"""The shared per-step prediction driver (the skeleton of Figs. 1–3).

Every system in the lineage runs the same loop over prediction steps;
only the Optimization Stage differs. :class:`PredictionSystem`
implements the loop; subclasses provide :meth:`_optimize`, returning one
or more *solution sets* (one per island — ESS and ESS-NS have exactly
one, the ESSIM systems one per island Master).

Per step *i* (paper §II-A):

1. **OS** — search scenarios against RFL_{i−1} → RFL_i (Workers
   simulate & evaluate).
2. **SS** — simulate the solution set(s) and aggregate into ignition-
   probability matrices.
3. **PS** — if a Kign from step *i−1* exists, threshold the current
   (Monitor-selected) matrix with it → PFL_i, scored against RFL_i.
4. **CS** — search Kign_i on the current matrix (per island; the
   Monitor keeps the best candidate for the next step).

The PS runs *before* the CS in code so the prediction never peeks at
the current step's calibration, matching the paper's data flow ("the
prediction cannot start at the first time instant").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.scenario import ParameterSpace
from repro.engine import EngineSession, backend_names
from repro.errors import ReproError
from repro.obs import span
from repro.parallel.timing import StageTimings
from repro.rng import ensure_rng, spawn
from repro.stages.calibration import search_kign
from repro.stages.prediction import predict
from repro.stages.statistical import aggregate_scenarios
from repro.systems.problem import PredictionStepProblem
from repro.systems.results import RunResult, StepResult
from repro.workloads.synthetic import ReferenceFire

__all__ = ["OSOutput", "PredictionSystem"]


@dataclass
class OSOutput:
    """What an Optimization Stage hands to the Statistical Stage.

    Attributes
    ----------
    solution_sets:
        One genome matrix per island (a single-element list for the
        one-level systems). Each matrix feeds one SS aggregation.
    best_fitness:
        Best single-scenario fitness found.
    evaluations:
        Simulator runs spent.
    extras:
        Free-form analysis payload (histories, archives, ...).
    """

    solution_sets: list[np.ndarray]
    best_fitness: float
    evaluations: int
    extras: dict = field(default_factory=dict)


class PredictionSystem(ABC):
    """Base class of ESS / ESS-NS / ESSIM-EA / ESSIM-DE.

    Parameters
    ----------
    n_workers:
        Worker processes for the fitness evaluation (1 = serial; the
        paper's Master/Worker parallelism kicks in above 1).
    space:
        Scenario space (defaults to Table I).
    backend:
        Simulation-engine backend evaluating the genome batches
        (``reference`` / ``vectorized`` / ``process``).
    cache_size:
        LRU capacity of the per-step scenario-result cache (0 = off;
        ignored while the session cache is on).
    session_cache_size:
        Capacity of the run-scoped cross-step result cache shared by
        every step of a run (0 = off).
    """

    #: Subclass display name (used in result records and reports).
    name: str = "base"

    def __init__(
        self,
        n_workers: int = 1,
        space: ParameterSpace | None = None,
        backend: str = "reference",
        cache_size: int = 0,
        session_cache_size: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ReproError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in backend_names():
            raise ReproError(
                f"unknown engine backend {backend!r}; choose from {backend_names()}"
            )
        if cache_size < 0:
            raise ReproError(f"cache_size must be >= 0, got {cache_size}")
        if session_cache_size < 0:
            raise ReproError(
                f"session_cache_size must be >= 0, got {session_cache_size}"
            )
        self.n_workers = n_workers
        self.space = space or ParameterSpace()
        self.backend = backend
        self.cache_size = cache_size
        self.session_cache_size = session_cache_size

    # ------------------------------------------------------------------
    @abstractmethod
    def _optimize(
        self,
        evaluate,
        space: ParameterSpace,
        rng: np.random.Generator,
        step: int,
    ) -> OSOutput:
        """Run the system's Optimization Stage for one step."""

    # ------------------------------------------------------------------
    def run(
        self,
        fire: ReferenceFire,
        rng: np.random.Generator | int | None = None,
        session: EngineSession | None = None,
        scope_label: str | None = None,
    ) -> RunResult:
        """Execute the full predictive process over a reference fire.

        Engine state whose lifetime is the run — the worker pool, the
        cross-step result cache — lives in one
        :class:`~repro.engine.EngineSession`; each step only borrows a
        view, so nothing expensive is rebuilt inside the hot loop.

        ``session`` optionally supplies an *externally owned* session
        (the experiment layer shares one across all systems of a
        ``compare``/sweep group, so repeats of the same step context
        hit the shared cache across systems). The session then decides
        the engine configuration: every step evaluates on the
        *session's* backend, worker pool and caches — including
        worker-side problem rebuilds, which mirror the session's
        backend/cache settings — and the system's own
        ``backend``/``n_workers``/cache settings are not consulted
        (the step records report what actually ran — the session's
        engine). Callers sharing a session across systems should build
        matching systems, as the experiment runner does. A borrowed
        session is never closed here — ownership stays with the caller
        — and the run's ``session`` payload then carries this system's
        counter deltas only (its :class:`~repro.engine.SessionScope`
        view), not the whole shared session's totals. ``scope_label``
        names that scope (default: the system's display name); the
        experiment layer passes its own per-system label so two
        differently-configured instances of one system class are
        counted as distinct consumers.
        """
        root = ensure_rng(rng)
        step_rngs = spawn(root, fire.n_steps)
        result = RunResult(system=self.name)
        kign_prev: float | None = None
        owns_session = session is None
        if owns_session:
            session = EngineSession(
                backend=self.backend,
                n_workers=self.n_workers,
                cache_size=self.cache_size,
                session_cache_size=self.session_cache_size,
            )
        elif session.closed:
            raise ReproError(
                f"{self.name}: the provided engine session is already closed"
            )
        scope = session.scoped(scope_label or self.name)

        try:
            for step in range(1, fire.n_steps + 1):
                with span("step", system=self.name, step=step):
                    timings = StageTimings()
                    start = fire.start_mask(step)
                    real = fire.real_mask(step)
                    # the session decides the engine configuration;
                    # mirroring it into the problem keeps worker-side
                    # rebuilds (island and pool processes drop the
                    # session on pickling) consistent with the
                    # master-side session views when the session was
                    # borrowed with settings differing from the
                    # system's own
                    problem = PredictionStepProblem(
                        terrain=fire.terrain,
                        start_burned=start,
                        real_burned=real,
                        horizon=fire.step_horizon(step),
                        space=self.space,
                        backend=session.backend,
                        cache_size=session.cache_size,
                        session=session,
                    )
                    engine = problem.engine  # session.for_step(...) view
                    try:
                        with timings.measure("os"):
                            os_out = self._optimize(
                                engine, self.space, step_rngs[step - 1], step
                            )

                        # SS: one probability matrix per island
                        # (Master-side), simulated through the same
                        # engine so the step's accounting covers the
                        # solution-set maps too.
                        with timings.measure("ss"):
                            matrices = []
                            for genomes in os_out.solution_sets:
                                if genomes.size == 0:
                                    raise ReproError(
                                        f"{self.name}: empty solution set "
                                        f"at step {step}"
                                    )
                                matrices.append(
                                    aggregate_scenarios(engine, genomes)
                                )
                    finally:
                        # Snapshot *before* close: closing freezes the
                        # engine stats, and the shared session cache
                        # keeps mutating in later steps.
                        engine_stats = engine.stats.to_dict()
                        engine.close()

                    # CS per island; the Monitor keeps the best candidate.
                    with timings.measure("cs"):
                        calibrations = [
                            search_kign(m, real, pre_burned=start)
                            for m in matrices
                        ]
                        chosen = int(
                            np.argmax([c.fitness for c in calibrations])
                        )
                        calibration = calibrations[chosen]
                        matrix = matrices[chosen]

                    # PS with the previous step's Kign on the chosen
                    # matrix.
                    quality = float("nan")
                    if kign_prev is not None:
                        with timings.measure("ps"):
                            prediction = predict(
                                matrix,
                                kign_prev,
                                real_burned=real,
                                pre_burned=start,
                            )
                            quality = prediction.quality

                    kign_prev = calibration.kign
                    result.steps.append(
                        StepResult(
                            step=step,
                            kign=calibration.kign,
                            calibration_fitness=calibration.fitness,
                            prediction_quality=quality,
                            best_scenario_fitness=os_out.best_fitness,
                            n_solutions=int(
                                sum(g.shape[0] for g in os_out.solution_sets)
                            ),
                            evaluations=os_out.evaluations,
                            timings=timings,
                            engine=engine_stats,
                        )
                    )
        finally:
            scope.close()
            if owns_session:
                session.close()
        result.session = scope.stats.to_dict()
        return result
