"""IQR-factor dynamic tuning (Caymes-Scutari et al. 2020).

The second ESSIM-DE tuning metric watches the interquartile range of
each island's population fitness: a collapsing IQR means the population
has concentrated on one behaviour (premature convergence / stagnation).
When the IQR falls below ``iqr_threshold``, the worst
``replace_fraction`` of the population is replaced with fresh uniform
samples, re-widening the distribution while keeping the good quartiles.
"""

from __future__ import annotations

import numpy as np

from repro.core.individual import Individual
from repro.core.scenario import ParameterSpace
from repro.errors import EvolutionError
from repro.rng import ensure_rng

__all__ = ["IQRTuning"]


class IQRTuning:
    """Island-model intervention: regenerate low-IQR populations.

    Parameters
    ----------
    space:
        Scenario space for re-sampling.
    iqr_threshold:
        Fitness-IQR below which an island counts as converged.
    replace_fraction:
        Fraction (0, 1] of the island replaced, worst-first.
    rng:
        Seeded generator for the fresh samples.
    """

    def __init__(
        self,
        space: ParameterSpace,
        iqr_threshold: float = 0.02,
        replace_fraction: float = 0.5,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if iqr_threshold < 0:
            raise EvolutionError(
                f"iqr_threshold must be >= 0, got {iqr_threshold}"
            )
        if not (0.0 < replace_fraction <= 1.0):
            raise EvolutionError(
                f"replace_fraction must be in (0, 1], got {replace_fraction}"
            )
        self.space = space
        self.iqr_threshold = iqr_threshold
        self.replace_fraction = replace_fraction
        self._rng = ensure_rng(rng)
        self.interventions_fired = 0

    # ------------------------------------------------------------------
    @staticmethod
    def fitness_iqr(population: list[Individual]) -> float:
        """Interquartile range of the population's fitness."""
        fit = np.asarray([ind.fitness or 0.0 for ind in population])
        q75, q25 = np.percentile(fit, [75, 25])
        return float(q75 - q25)

    def __call__(
        self, epoch: int, populations: list[list[Individual]]
    ) -> list[list[Individual]]:
        """The :data:`repro.parallel.islands.Intervention` hook."""
        out: list[list[Individual]] = []
        for pop in populations:
            if self.fitness_iqr(pop) >= self.iqr_threshold:
                out.append(pop)
                continue
            out.append(self.regenerate(pop))
        return out

    def regenerate(self, population: list[Individual]) -> list[Individual]:
        """Replace the worst fraction with fresh uniform samples."""
        self.interventions_fired += 1
        n_replace = max(1, int(round(len(population) * self.replace_fraction)))
        n_replace = min(n_replace, len(population))
        ranked = sorted(
            population, key=lambda ind: ind.fitness or 0.0, reverse=True
        )
        keep = [ind.copy() for ind in ranked[: len(population) - n_replace]]
        fresh_genomes = self.space.sample(n_replace, self._rng)
        fresh = [Individual(genome=g) for g in fresh_genomes]
        return keep + fresh
