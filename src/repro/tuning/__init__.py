"""Dynamic tuning metrics for ESSIM-DE (§II-B).

ESSIM-DE suffered premature convergence and population stagnation; two
automatic+dynamic tuning metrics were retrofitted (Tardivo et al. 2018;
Caymes-Scutari et al. 2020):

* :mod:`~repro.tuning.restart` — a population **restart operator**
  fired when the search stagnates;
* :mod:`~repro.tuning.iqr` — monitoring of the population's fitness
  **IQR factor** across generations, regenerating the population when
  it collapses below a threshold.

Both are implemented as island-model *interventions* (callables applied
between epochs — see :mod:`repro.parallel.islands`), which is exactly
where the ESSIM Monitors applied them.
"""

from repro.tuning.restart import PopulationRestart
from repro.tuning.iqr import IQRTuning

__all__ = ["PopulationRestart", "IQRTuning"]
