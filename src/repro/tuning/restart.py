"""Population restart operator (Tardivo et al. 2018).

Fires when an island's best fitness has not improved for ``patience``
consecutive epochs: the island keeps its ``elite_keep`` best individuals
and re-draws the rest uniformly from the scenario space, restoring the
exploration the converged population lost. This is the first of the two
ESSIM-DE tuning metrics §II-B describes.
"""

from __future__ import annotations

import numpy as np

from repro.core.individual import Individual
from repro.core.scenario import ParameterSpace
from repro.errors import EvolutionError
from repro.rng import ensure_rng

__all__ = ["PopulationRestart"]


class PopulationRestart:
    """Island-model intervention: restart stagnating populations.

    Parameters
    ----------
    space:
        Scenario space for re-sampling.
    patience:
        Number of consecutive non-improving epochs tolerated before a
        restart (≥ 1).
    elite_keep:
        Individuals preserved across a restart (≥ 1 so the best-so-far
        is never lost).
    min_improvement:
        Fitness gain below which an epoch counts as non-improving.
    rng:
        Seeded generator for the fresh samples.
    """

    def __init__(
        self,
        space: ParameterSpace,
        patience: int = 2,
        elite_keep: int = 2,
        min_improvement: float = 1e-6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if patience < 1:
            raise EvolutionError(f"patience must be >= 1, got {patience}")
        if elite_keep < 1:
            raise EvolutionError(f"elite_keep must be >= 1, got {elite_keep}")
        if min_improvement < 0:
            raise EvolutionError(
                f"min_improvement must be >= 0, got {min_improvement}"
            )
        self.space = space
        self.patience = patience
        self.elite_keep = elite_keep
        self.min_improvement = min_improvement
        self._rng = ensure_rng(rng)
        self._best: dict[int, float] = {}
        self._stale: dict[int, int] = {}
        self.restarts_fired = 0

    # ------------------------------------------------------------------
    def __call__(
        self, epoch: int, populations: list[list[Individual]]
    ) -> list[list[Individual]]:
        """The :data:`repro.parallel.islands.Intervention` hook."""
        out: list[list[Individual]] = []
        for island, pop in enumerate(populations):
            best = max((ind.fitness or 0.0) for ind in pop)
            prev = self._best.get(island, -np.inf)
            if best > prev + self.min_improvement:
                self._best[island] = best
                self._stale[island] = 0
                out.append(pop)
                continue
            self._stale[island] = self._stale.get(island, 0) + 1
            if self._stale[island] >= self.patience:
                out.append(self.restart(pop))
                self._stale[island] = 0
            else:
                out.append(pop)
        return out

    def restart(self, population: list[Individual]) -> list[Individual]:
        """Keep the elite, re-draw everyone else."""
        self.restarts_fired += 1
        ranked = sorted(
            population, key=lambda ind: ind.fitness or 0.0, reverse=True
        )
        elites = [ind.copy() for ind in ranked[: self.elite_keep]]
        n_fresh = len(population) - len(elites)
        fresh_genomes = self.space.sample(n_fresh, self._rng)
        fresh = [Individual(genome=g) for g in fresh_genomes]
        return elites + fresh
