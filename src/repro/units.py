"""Unit-conversion constants shared across the package.

The paper's Table I uses field units (metres, miles/hour, percent); the
Rothermel kernel underneath runs in the customary fireLib unit system
(feet, minutes, fractions). Every conversion constant lives here so the
firelib, grid and engine layers agree on the exact float values —
bitwise identity between simulation backends depends on it.
"""

from __future__ import annotations

__all__ = ["METERS_TO_FEET", "MPH_TO_FTMIN"]

#: Metres → feet (terrain cell size → Rothermel distance units).
METERS_TO_FEET = 3.280839895

#: Miles/hour → feet/minute (Table I wind speed → Rothermel wind speed).
MPH_TO_FTMIN = 88.0
