"""Nestable tracing spans over the :class:`~repro.obs.metrics.Telemetry`
registry.

A span measures one unit of nested work — ``run`` > ``step`` >
``generation`` inside the prediction loop, ``unit`` around each
scheduled :class:`~repro.experiments.work.WorkUnit`. Spans are plain
context managers::

    with span("unit", group=3, cells=4):
        ...

On exit each span

* observes its duration into the ``repro_span_seconds{span=...}``
  histogram (so every traced name doubles as a latency metric for
  free), and
* emits one event dict to the registry's sinks::

      {"event": "span", "span": "unit", "id": "1a2bp1-7",
       "parent": "1a2bp1-2", "depth": 1, "start": <unix time>,
       "seconds": 0.42, "status": "ok" | "error", "thread": <ident>,
       "attrs": {...}}

Span ids are strings namespaced by a per-process, per-registry prefix
(:meth:`Telemetry.set_span_prefix` pins it — fleet workers use their
worker id), so traces merged across processes never collide. When the
registry has adopted a trace context (:meth:`Telemetry.adopt_trace`),
every span additionally carries ``trace_id`` and a span opened with an
empty local stack parents onto the adopted remote span — that is how a
worker's ``unit`` spans hang under the coordinator's ``plan`` root.

Nesting is tracked per *thread* (a ``threading.local`` stack on the
registry): the experiment runner's threads and the fleet worker's
heartbeat thread each get their own lineage, and a span opened on one
thread never becomes the parent of work on another.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import Telemetry

__all__ = ["SPAN_SECONDS_METRIC", "span"]

#: Histogram every finished span's duration lands in, labelled by span
#: name.
SPAN_SECONDS_METRIC = "repro_span_seconds"


@contextmanager
def span(name: str, telemetry: Telemetry | None = None, **attrs):
    """Trace one block of work as a named, nestable span.

    ``attrs`` must be JSON-safe (they are written verbatim to trace
    sinks). ``telemetry`` defaults to the process registry. Yields a
    mutable dict — the event-in-progress — so the block can attach
    late attributes::

        with span("unit", group=g) as ev:
            ev["attrs"]["records"] = n_done

    The span is recorded even when the block raises (with
    ``status: "error"``), so traces show where a run died.
    """
    if telemetry is None:
        from repro.obs import telemetry as default_telemetry

        telemetry = default_telemetry()
    stack = telemetry._stack()
    trace = telemetry.trace_context()
    event = {
        "event": "span",
        "span": str(name),
        "id": telemetry._next_span_id(),
        "parent": stack[-1] if stack else (trace or {}).get("parent_span"),
        "depth": len(stack),
        "start": time.time(),
        "thread": threading.get_ident(),
        "attrs": dict(attrs),
    }
    if trace:
        event["trace_id"] = trace["trace_id"]
    stack.append(event["id"])
    started = time.perf_counter()
    try:
        yield event
        event["status"] = "ok"
    except BaseException:
        event["status"] = "error"
        raise
    finally:
        event["seconds"] = time.perf_counter() - started
        stack.pop()
        telemetry.histogram(SPAN_SECONDS_METRIC, span=event["span"]).observe(
            event["seconds"]
        )
        telemetry.emit(event)
