"""Process-local metric registry: counters, gauges, histograms.

The observability layer deliberately carries **no dependencies** — no
prometheus_client, no OpenTelemetry SDK — because the reproduction must
run in the same hermetic environment as the simulations it measures.
What it keeps from those ecosystems is the *data model*:

* a :class:`Telemetry` registry hands out metric instruments keyed by
  ``(name, labels)``; asking twice for the same pair returns the same
  instrument, so instrumentation sites never coordinate;
* :class:`Counter` (monotonic), :class:`Gauge` (set/add), and
  :class:`Histogram` (fixed upper-bound buckets with cumulative
  counts, plus sum/count) — enough to answer "how many", "how much
  right now", and "how long does one usually take";
* :meth:`Telemetry.prometheus_text` renders the whole registry in the
  Prometheus text exposition format, and :func:`parse_prometheus_text`
  reads such a snapshot back (the round-trip is what the CI smoke and
  the unit tests assert on).

Everything is thread-safe under one registry lock plus per-instrument
locks: instruments are updated from EA loops, pool drain threads and
fleet heartbeat threads concurrently.
"""

from __future__ import annotations

import itertools
import math
import os
import re
import threading
from typing import Iterable, Mapping

from repro.errors import ReproError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Telemetry",
    "histogram_quantile",
    "parse_prometheus_text",
    "snapshot_delta",
]

#: Distinguishes registries created in the same process: the span-id
#: prefix combines the pid with this sequence, so a reset registry (or
#: a forked child, whose pid differs) can never reissue an id.
_PREFIX_SEQ = itertools.count(1)

#: Default histogram bucket upper bounds (seconds-oriented: the spans
#: and kernel timings this repo records range from sub-millisecond
#: cache hits to multi-minute fleet units).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: dict) -> tuple[tuple[str, str], ...]:
    out = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ReproError(f"invalid metric label name {key!r}")
        out.append((key, str(labels[key])))
    return tuple(out)


class Counter:
    """A monotonically increasing value (events, cells, cache hits)."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (in-flight units, utilization)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket distribution (batch seconds, unit seconds).

    Buckets are cumulative upper bounds in the Prometheus style; an
    implicit ``+Inf`` bucket always exists, so ``observe`` never drops
    a sample.
    """

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            if self._max is None or value > self._max:
                self._max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def fold(self, cumulative: Mapping, sum_delta, count_delta, max_value=None) -> bool:
        """Merge a cumulative-bucket delta shipped over the fleet wire.

        ``cumulative`` maps bound text (as in :meth:`snapshot`) to the
        *delta* of the cumulative count for that bound. Returns False —
        instead of raising — when the payload is malformed or its bucket
        layout disagrees with this instrument, because the caller folds
        untrusted worker input on the coordinator's hot path.
        """
        try:
            wire = {str(k): int(v) for k, v in cumulative.items()}
            sum_delta = float(sum_delta)
            count_delta = int(count_delta)
            max_value = None if max_value is None else float(max_value)
        except (AttributeError, TypeError, ValueError):
            return False
        with self._lock:
            keys = [format_bound(b) for b in self.bounds] + ["+Inf"]
            if set(wire) != set(keys):
                return False
            previous = 0
            per_bucket = []
            for key in keys:
                per_bucket.append(wire[key] - previous)
                previous = wire[key]
            if count_delta < 0 or any(d < 0 for d in per_bucket):
                return False
            for i, delta in enumerate(per_bucket):
                self._counts[i] += delta
            self._sum += sum_delta
            self._count += count_delta
            if max_value is not None and (self._max is None or max_value > self._max):
                self._max = max_value
        return True

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        """Cumulative bucket counts keyed by upper bound, plus sum/count."""
        with self._lock:
            cumulative = {}
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                cumulative[format_bound(bound)] = running
            cumulative["+Inf"] = running + self._counts[-1]
            return {
                "buckets": cumulative,
                "sum": self._sum,
                "count": self._count,
                "max": self._max if self._max is not None else 0.0,
            }


def format_bound(bound: float) -> str:
    """Canonical text form of a bucket bound (``0.5``, ``10``, ``+Inf``)."""
    if math.isinf(bound):
        return "+Inf"
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Telemetry:
    """A registry of metric instruments plus attached event sinks.

    One instance is process-global (see :func:`repro.obs.telemetry`);
    tests build private ones. Instruments are created lazily on first
    request and shared by ``(name, labels)`` thereafter; requesting an
    existing name with a different instrument kind raises, so two
    instrumentation sites can never silently disagree about what a
    metric means.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._sinks: list = []
        self._span_ids = 0
        self._span_stack = threading.local()
        self._span_prefix: str | None = None
        self._span_prefix_pid: int | None = None
        self._trace: dict | None = None
        self._trace_ids = 0

    # -- instruments ----------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._instrument("gauge", name, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``.

        ``buckets`` only applies on first creation; later requests
        share the existing instrument whatever they pass.
        """
        return self._instrument("histogram", name, labels, buckets=buckets)

    def _instrument(self, kind: str, name: str, labels: dict, **kwargs):
        _check_name(name)
        key = (name, _check_labels(labels))
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ReproError(
                    f"metric {name!r} already registered as a {known}, "
                    f"requested as a {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](**kwargs)
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    # -- sinks ----------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Attach an event sink (span/event records are fanned out)."""
        with self._lock:
            self._sinks.append(sink)

    @property
    def sinks(self) -> list:
        with self._lock:
            return list(self._sinks)

    def emit(self, event: dict) -> None:
        """Send one event dict to every attached sink."""
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close and detach all sinks (idempotent)."""
        with self._lock:
            sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink.close()

    # -- span bookkeeping (used by repro.obs.spans) ---------------------
    def _prefix_locked(self) -> str:
        pid = os.getpid()
        if self._span_prefix is None or self._span_prefix_pid != pid:
            # Regenerating when the pid changes covers fork-started
            # shard children, which inherit the parent registry whole.
            self._span_prefix = f"{pid:x}p{next(_PREFIX_SEQ)}"
            self._span_prefix_pid = pid
        return self._span_prefix

    def set_span_prefix(self, prefix: str) -> None:
        """Pin the span-id prefix (fleet workers use their worker id)."""
        with self._lock:
            self._span_prefix = str(prefix)
            self._span_prefix_pid = os.getpid()

    def _next_span_id(self) -> str:
        with self._lock:
            self._span_ids += 1
            return f"{self._prefix_locked()}-{self._span_ids}"

    def _stack(self) -> list:
        stack = getattr(self._span_stack, "items", None)
        if stack is None:
            stack = self._span_stack.items = []
        return stack

    # -- trace context --------------------------------------------------
    def new_trace_id(self) -> str:
        """Mint a trace id (globally unique via the span-id prefix)."""
        with self._lock:
            self._trace_ids += 1
            return f"{self._prefix_locked()}-t{self._trace_ids}"

    def adopt_trace(self, trace_id, parent_span=None) -> None:
        """Join a (possibly remote) trace: subsequent spans carry
        ``trace_id`` and root spans parent onto ``parent_span``.
        A falsy ``trace_id`` clears the context."""
        with self._lock:
            if not trace_id:
                self._trace = None
            else:
                self._trace = {
                    "trace_id": str(trace_id),
                    "parent_span": parent_span,
                }

    def trace_context(self) -> dict | None:
        """The adopted ``{trace_id, parent_span}`` context, or None."""
        with self._lock:
            return dict(self._trace) if self._trace else None

    # -- export ---------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """All instruments as JSON-safe dicts, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [
            {
                "name": name,
                "labels": dict(labels),
                "type": metric.kind,
                **metric.snapshot(),
            }
            for (name, labels), metric in items
        ]

    def prometheus_text(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        seen_type: set[str] = set()
        for entry in self.snapshot():
            name, labels = entry["name"], entry["labels"]
            if name not in seen_type:
                lines.append(f"# TYPE {name} {entry['type']}")
                seen_type.add(name)
            if entry["type"] == "histogram":
                for bound, count in entry["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_text({**labels, 'le': bound})} {count}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(labels)} {_num(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_text(labels)} {entry['count']}"
                )
                lines.append(
                    f"{name}_max{_label_text(labels)} {_num(entry['max'])}"
                )
                if entry["count"]:
                    p50 = histogram_quantile(entry, 0.5)
                    p95 = histogram_quantile(entry, 0.95)
                    lines.append(
                        f"# quantiles {name}{_label_text(labels)} "
                        f"p50={p50:.6g} p95={p95:.6g} max={entry['max']:.6g}"
                    )
            else:
                lines.append(
                    f"{name}{_label_text(labels)} {_num(entry['value'])}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_prometheus(self, path) -> None:
        """Write :meth:`prometheus_text` to ``path`` atomically enough
        for a snapshot file (single write, truncating)."""
        with open(path, "w") as fh:
            fh.write(self.prometheus_text())

    # -- fleet aggregation ----------------------------------------------
    def fold_snapshot(self, entries, **extra_labels) -> int:
        """Fold a wire metric delta (see :func:`snapshot_delta`) into
        this registry under ``extra_labels`` (typically ``worker=``).

        The payload crosses a process boundary, so malformed entries are
        skipped rather than raised, and entries that already carry one
        of ``extra_labels`` are skipped too — that stops re-folding a
        previously folded series when a worker shares the coordinator's
        registry (in-thread fleets in tests). Returns the folded count.
        """
        if not isinstance(entries, (list, tuple)):
            return 0
        folded = 0
        for wire in entries:
            if not isinstance(wire, dict):
                continue
            labels = wire.get("labels")
            if not isinstance(labels, dict) or any(
                key in labels for key in extra_labels
            ):
                continue
            try:
                name = str(wire.get("name"))
                labels = {
                    **{str(k): str(v) for k, v in labels.items()},
                    **extra_labels,
                }
                kind = wire.get("type")
                if kind == "counter":
                    amount = float(wire.get("value", 0.0))
                    if amount > 0:
                        self.counter(name, **labels).inc(amount)
                        folded += 1
                elif kind == "gauge":
                    gauge = self.gauge(name, **labels)
                    gauge.set(max(gauge.value, float(wire.get("value", 0.0))))
                    folded += 1
                elif kind == "histogram":
                    buckets = wire.get("buckets")
                    if not isinstance(buckets, dict):
                        continue
                    bounds = sorted(
                        float(b) for b in buckets if b != "+Inf"
                    )
                    if not bounds:
                        continue
                    histogram = self.histogram(name, buckets=bounds, **labels)
                    if histogram.fold(
                        buckets,
                        wire.get("sum", 0.0),
                        wire.get("count", 0),
                        wire.get("max"),
                    ):
                        folded += 1
            except (ReproError, TypeError, ValueError):
                continue
        return folded


def _entry_key(entry: Mapping) -> tuple:
    return (
        entry["name"],
        tuple(sorted((str(k), str(v)) for k, v in entry["labels"].items())),
    )


def snapshot_delta(prev: list, cur: list) -> list[dict]:
    """The wire-compact difference between two :meth:`Telemetry.snapshot`
    calls: counter and histogram entries carry deltas (and are dropped
    entirely when nothing moved), gauges carry their current value when
    it changed. Fleet workers ship this on heartbeat/complete and the
    coordinator folds it with :meth:`Telemetry.fold_snapshot`."""
    before = {_entry_key(entry): entry for entry in prev}
    out: list[dict] = []
    for entry in cur:
        old = before.get(_entry_key(entry))
        name, labels, kind = entry["name"], dict(entry["labels"]), entry["type"]
        if kind == "counter":
            delta = entry["value"] - (old["value"] if old else 0.0)
            if delta > 0:
                out.append(
                    {"name": name, "labels": labels, "type": kind, "value": delta}
                )
        elif kind == "gauge":
            if old is None or old["value"] != entry["value"]:
                out.append(
                    {
                        "name": name,
                        "labels": labels,
                        "type": kind,
                        "value": entry["value"],
                    }
                )
        else:
            old_buckets = old["buckets"] if old else {}
            buckets = {
                bound: cum - old_buckets.get(bound, 0)
                for bound, cum in entry["buckets"].items()
            }
            if any(buckets.values()):
                out.append(
                    {
                        "name": name,
                        "labels": labels,
                        "type": kind,
                        "buckets": buckets,
                        "sum": entry["sum"] - (old["sum"] if old else 0.0),
                        "count": entry["count"] - (old["count"] if old else 0),
                        "max": entry["max"],
                    }
                )
    return out


def histogram_quantile(entry: Mapping, q: float) -> float:
    """Estimate the ``q``-quantile of one histogram snapshot entry.

    Linear interpolation inside the winning bucket, in the Prometheus
    ``histogram_quantile`` style, with one improvement the exact
    tracked ``max`` makes possible: estimates are capped at ``max``,
    so a handful of observations in a wide bucket can never yield a
    "p95" above the largest value ever seen, and a quantile landing in
    the ``+Inf`` overflow bucket answers with ``max`` instead of an
    unbounded guess.
    """
    count = int(entry.get("count", 0))
    buckets = entry.get("buckets") or {}
    if count <= 0 or not buckets:
        return 0.0
    target = min(max(float(q), 0.0), 1.0) * count
    top = float(entry.get("max", 0.0))

    def capped(estimate: float) -> float:
        return min(estimate, top) if top > 0.0 else estimate

    items = sorted(
        (float("inf") if bound == "+Inf" else float(bound), cum)
        for bound, cum in buckets.items()
    )
    prev_bound, prev_cum = 0.0, 0
    for bound, cum in items:
        if cum >= target:
            if math.isinf(bound):
                return max(top, prev_bound)
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return capped(bound)
            frac = (target - prev_cum) / in_bucket
            return capped(prev_bound + (bound - prev_bound) * frac)
        prev_bound, prev_cum = bound, cum
    return max(top, prev_bound)


def _num(value: float) -> str:
    """Render a sample value without a spurious ``.0`` on integers."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    parts = ", ".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + parts + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def parse_prometheus_text(text: str) -> list[dict]:
    """Parse a text-exposition snapshot back into ``snapshot()`` shape.

    Supports exactly what :meth:`Telemetry.prometheus_text` emits —
    ``# TYPE`` comments, counters/gauges as single samples, histograms
    as ``_bucket{le=...}``/``_sum``/``_count`` families — which is all
    the round-trip tests and CI assertions need. Raises
    :class:`~repro.errors.ReproError` on lines it cannot read.
    """
    types: dict[str, str] = {}
    entries: dict[tuple[str, tuple], dict] = {}

    def entry(name: str, labels: dict, kind: str) -> dict:
        key = (name, tuple(sorted(labels.items())))
        if key not in entries:
            base: dict = {"name": name, "labels": labels, "type": kind}
            if kind == "histogram":
                base.update(buckets={}, sum=0.0, count=0, max=0.0)
            else:
                base["value"] = 0.0
            entries[key] = base
        return entries[key]

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                known = types.get(parts[2])
                if known is not None and known != parts[3]:
                    raise ReproError(
                        f"conflicting TYPE for {parts[2]!r}: "
                        f"{known} vs {parts[3]}"
                    )
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ReproError(f"unparseable metrics line: {raw!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        body = match.group("labels")
        if body:
            pos = 0
            while pos < len(body):
                pair = _LABEL_PAIR_RE.match(body, pos)
                if not pair:
                    raise ReproError(f"unparseable metric labels: {raw!r}")
                labels[pair.group("key")] = _unescape(pair.group("value"))
                pos = pair.end()
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ReproError(f"unparseable metric value: {raw!r}") from None
        for suffix in ("_bucket", "_sum", "_count", "_max"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                le = labels.pop("le", None)
                target = entry(base, labels, "histogram")
                if suffix == "_bucket":
                    target["buckets"][le] = int(value)
                elif suffix == "_sum":
                    target["sum"] = value
                elif suffix == "_count":
                    target["count"] = int(value)
                else:
                    target["max"] = value
                break
        else:
            kind = types.get(name, "gauge")
            entry(name, labels, kind)["value"] = value
    return [
        entries[key] for key in sorted(entries, key=lambda k: (k[0], k[1]))
    ]
