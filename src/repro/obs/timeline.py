"""JSONL trace files → Chrome trace-event JSON (Perfetto-loadable).

A fleet run leaves one trace file per process — the coordinator's
(holding the ``plan`` root span) and one per worker (holding that
worker's ``unit → run → step → generation`` subtrees, all stamped with
the coordinator-assigned ``trace_id``). :func:`build_timeline` merges
them into a single document the Perfetto UI (https://ui.perfetto.dev)
or ``chrome://tracing`` opens directly:

* each input file becomes one *process track* (``pid``), named after
  the worker that wrote it (taken from its ``clock_sync`` events) or
  the file stem;
* span events become complete (``ph: "X"``) slices; the emitting
  thread becomes the track's ``tid`` so concurrent shard/heartbeat
  work nests correctly;
* worker timestamps are shifted by the file's last ``clock_sync``
  offset — the coordinator-measured estimate shipped on ``complete``
  replies — so all tracks share the coordinator's clock;
* free-form events that carry a ``time`` (``slow_unit``,
  ``clock_sync``) become instant markers.

Span ``id``/``parent``/``trace_id`` and all span attrs survive in each
slice's ``args``, so the cross-process parent links stay inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

__all__ = ["build_timeline", "export_timeline", "load_trace"]


def load_trace(path) -> list[dict]:
    """The event dicts of one JSONL trace file.

    Undecodable lines are skipped rather than fatal: a killed worker
    truncates its last line mid-write, and that trace is exactly the
    one worth looking at.
    """
    events: list[dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict):
                    events.append(event)
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    return events


def _track_label(path, events: list[dict]) -> str:
    for event in events:
        if event.get("event") == "clock_sync" and event.get("worker"):
            return str(event["worker"])
    return Path(path).stem


def _clock_offset(events: list[dict]) -> float:
    offset = 0.0
    for event in events:
        if event.get("event") == "clock_sync":
            try:
                offset = float(event.get("clock_offset", 0.0))
            except (TypeError, ValueError):
                continue
    return offset


def build_timeline(paths, trace_id: str | None = None) -> dict:
    """Merge trace files into one Chrome trace-event document.

    ``trace_id`` filters to a single experiment when a file mixes
    several runs; by default everything is kept and the ids seen are
    reported in ``otherData.trace_ids``.
    """
    trace_events: list[dict] = []
    trace_ids: set[str] = set()
    tracks: list[dict] = []
    spans = 0
    for pid, path in enumerate(paths, start=1):
        events = load_trace(path)
        label = _track_label(path, events)
        offset = _clock_offset(events)
        tracks.append(
            {
                "pid": pid,
                "label": label,
                "source": str(path),
                "clock_offset": offset,
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        tids: dict = {}
        for event in events:
            event_trace = event.get("trace_id")
            if event_trace:
                trace_ids.add(str(event_trace))
            if (
                trace_id is not None
                and event_trace is not None
                and event_trace != trace_id
            ):
                continue
            if (
                event.get("event") == "span"
                and "start" in event
                and "seconds" in event
            ):
                try:
                    start = float(event["start"])
                    seconds = max(float(event["seconds"]), 0.0)
                except (TypeError, ValueError):
                    continue
                tid = tids.setdefault(event.get("thread"), len(tids) + 1)
                args = {
                    "id": event.get("id"),
                    "parent": event.get("parent"),
                    "status": event.get("status"),
                }
                if event_trace:
                    args["trace_id"] = event_trace
                attrs = event.get("attrs")
                if isinstance(attrs, dict):
                    args.update(attrs)
                trace_events.append(
                    {
                        "name": str(event.get("span")),
                        "cat": "span",
                        "ph": "X",
                        "ts": (start + offset) * 1e6,
                        "dur": seconds * 1e6,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
                spans += 1
            elif event.get("event") and "time" in event:
                try:
                    when = float(event["time"])
                except (TypeError, ValueError):
                    continue
                trace_events.append(
                    {
                        "name": str(event["event"]),
                        "cat": "event",
                        "ph": "i",
                        "s": "p",
                        "ts": (when + offset) * 1e6,
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            key: value
                            for key, value in event.items()
                            if key not in ("event", "time")
                        },
                    }
                )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_ids": sorted(trace_ids),
            "tracks": tracks,
            "spans": spans,
        },
    }


def export_timeline(paths, output, trace_id: str | None = None) -> dict:
    """Write :func:`build_timeline` to ``output``; returns the summary
    (``otherData``) for the caller to report."""
    doc = build_timeline(paths, trace_id=trace_id)
    out = Path(output)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(doc, fh, sort_keys=True, default=str)
        fh.write("\n")
    return doc["otherData"]
