"""``repro.obs`` — the unified, dependency-free telemetry subsystem.

One process-local :class:`~repro.obs.metrics.Telemetry` registry holds
every counter/gauge/histogram; :func:`~repro.obs.spans.span` traces
nested work into the same registry; sinks decide where span events go
(nowhere by default). The four layers of the stack instrument
themselves against the process registry unconditionally — the cost of
an unobserved metric update is a dict lookup and a locked add — and
the CLI's ``--trace``/``--metrics`` flags merely attach a
:class:`~repro.obs.sinks.JsonlSink` and schedule a Prometheus-text
snapshot at exit.

Typical wiring (what ``repro run --trace t.jsonl --metrics m.prom``
does)::

    from repro import obs

    obs.configure(trace_path="t.jsonl")
    ...  # run things; spans stream to t.jsonl as they close
    obs.dump_metrics("m.prom")
    obs.shutdown()

Tests call :func:`reset` to swap in a fresh registry so parallel
instrumented code never leaks counts across cases.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    histogram_quantile,
    parse_prometheus_text,
    snapshot_delta,
)
from repro.obs.sinks import JsonlSink, ListSink, NullSink, TelemetrySink
from repro.obs.spans import SPAN_SECONDS_METRIC, span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "SPAN_SECONDS_METRIC",
    "Telemetry",
    "TelemetrySink",
    "configure",
    "dump_metrics",
    "histogram_quantile",
    "parse_prometheus_text",
    "reset",
    "shutdown",
    "snapshot_delta",
    "span",
    "telemetry",
]

_lock = threading.Lock()
_registry: Telemetry | None = None


def telemetry() -> Telemetry:
    """The process-global registry (created on first use)."""
    global _registry
    with _lock:
        if _registry is None:
            _registry = Telemetry()
        return _registry


def reset() -> Telemetry:
    """Replace the process registry with a fresh one (closing the old
    one's sinks) and return it — test isolation, or a clean slate
    between independent fleet runs in one process."""
    global _registry
    with _lock:
        old, _registry = _registry, Telemetry()
        fresh = _registry
    if old is not None:
        old.close()
    return fresh


def configure(trace_path=None) -> Telemetry:
    """Attach optional sinks to the process registry.

    ``trace_path`` adds a :class:`JsonlSink` streaming span events to
    that file. Returns the registry for chaining.
    """
    registry = telemetry()
    if trace_path:
        registry.add_sink(JsonlSink(trace_path))
    return registry


def dump_metrics(path) -> None:
    """Write the process registry as a Prometheus text snapshot."""
    telemetry().dump_prometheus(path)


def shutdown() -> None:
    """Close every sink attached to the process registry."""
    telemetry().close()
