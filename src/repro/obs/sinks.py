"""Telemetry event sinks: where span/event records go.

A sink receives finished-event dicts (one per closed span, plus
free-form events like the coordinator's fleet summary) and must be
cheap and non-throwing on the hot path. Two implementations:

* :class:`NullSink` — the default; swallows everything, so
  instrumentation costs nothing when nobody is listening;
* :class:`JsonlSink` — one JSON object per line, append-mode, flushed
  per event so a crashed run still leaves a readable trace prefix
  (mirroring the :class:`~repro.experiments.store.ResultsStore`
  durability stance, minus the fsync — traces are diagnostics, not
  results).

:class:`ListSink` collects events in memory; it exists for tests and
for the coordinator's live status aggregation.
"""

from __future__ import annotations

import json
import logging
import threading
from pathlib import Path
from typing import Protocol, runtime_checkable

__all__ = ["JsonlSink", "ListSink", "NullSink", "TelemetrySink"]


@runtime_checkable
class TelemetrySink(Protocol):
    """What :class:`~repro.obs.metrics.Telemetry` fans events out to."""

    def emit(self, event: dict) -> None:
        """Receive one finished event (must not raise on the hot path)."""
        ...

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...


class NullSink:
    """Discards every event — the zero-overhead default."""

    def emit(self, event: dict) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Collects events in memory (tests, in-process aggregation)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def emit(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON line per event to ``path``.

    The file is opened lazily on the first event (so configuring a
    trace path never creates empty files for runs that emit nothing)
    and every line is flushed immediately — a killed worker's trace
    ends mid-run but stays parseable line by line.

    Filesystem trouble never propagates to the instrumented code: if
    the target directory vanishes before the first event it is simply
    recreated, and if the file cannot be opened or written at all the
    sink logs one warning, goes dark, and drops further events —
    losing a trace must not kill the run it was tracing.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None
        self._closed = False
        self._broken = False

    def emit(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._closed or self._broken:
                return
            try:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = open(self.path, "a")
                self._fh.write(line)
                self._fh.flush()
            except OSError as exc:
                self._broken = True
                logging.getLogger("repro.obs").warning(
                    "trace sink %s failed (%s); dropping further events",
                    self.path,
                    exc,
                )

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
