"""Fleet observability over HTTP, on the standard library only.

:class:`ObsHTTPServer` runs a ``http.server`` thread next to whatever
command enabled it (``--http-port`` on ``serve-coordinator``, ``run``,
``sweep``, ``worker``) and answers three read-only endpoints:

* ``/metrics`` — the process registry in Prometheus text exposition
  format (:meth:`Telemetry.prometheus_text`). On a coordinator this is
  the *fleet* view, because worker heartbeats fold their metric deltas
  into the coordinator registry labelled by worker.
* ``/healthz`` — liveness, always ``ok`` while the thread runs.
* ``/status`` — a JSON mirror of the read-only ``status`` fleet
  protocol message. The coordinator registers a status provider while
  serving (:func:`set_status_provider`); outside a fleet run the
  endpoint reports ``{"status": "idle"}``. Like the protocol message,
  a scrape never counts as worker contact and never mutates leases.

Scrapes are served from their own daemon threads, so a slow or stuck
client cannot stall the coordinator loop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "ObsHTTPServer",
    "clear_status_provider",
    "set_status_provider",
    "status_payload",
]

_provider_lock = threading.Lock()
_status_provider = None


def set_status_provider(provider) -> None:
    """Install the callable answering ``/status`` (a coordinator does
    this for the duration of a fleet run)."""
    global _status_provider
    with _provider_lock:
        _status_provider = provider


def clear_status_provider(provider=None) -> None:
    """Remove the status provider; passing the provider makes the call
    conditional, so a finishing run never clears a newer run's hook."""
    global _status_provider
    with _provider_lock:
        if provider is None or _status_provider is provider:
            _status_provider = None


def status_payload() -> dict:
    """What ``/status`` answers right now."""
    with _provider_lock:
        provider = _status_provider
    if provider is None:
        return {"status": "idle"}
    return provider()


class _ObsRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.server.registry().prometheus_text().encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/healthz":
                body = b"ok\n"
                ctype = "text/plain; charset=utf-8"
            elif path == "/status":
                payload = json.dumps(
                    self.server.status(), sort_keys=True, default=str
                )
                body = (payload + "\n").encode()
                ctype = "application/json"
            else:
                self.send_error(
                    404, "unknown path (serving /metrics, /healthz, /status)"
                )
                return
        except Exception as exc:  # a broken provider must not kill serving
            self.send_error(500, f"observability handler failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes are not log noise


class ObsHTTPServer:
    """A daemon-threaded HTTP exposition server.

    ``registry`` may override the metric source (tests pass a private
    :class:`Telemetry`); it defaults to the process registry resolved
    per request, so a ``repro.obs.reset()`` is picked up live.
    ``status`` likewise overrides the ``/status`` payload; the default
    consults the module-level provider hook.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry=None, status=None) -> None:
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self._registry = registry
        self._status = status
        self._httpd = None
        self._thread = None

    def registry(self):
        if self._registry is not None:
            return self._registry
        from repro.obs import telemetry

        return telemetry()

    def status(self) -> dict:
        if self._status is not None:
            return self._status()
        return status_payload()

    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, port) —
        with ``port=0`` the OS picks a free one."""
        httpd = ThreadingHTTPServer((self.host, self.port), _ObsRequestHandler)
        httpd.daemon_threads = True
        httpd.registry = self.registry
        httpd.status = self.status
        self._httpd = httpd
        self.address = (httpd.server_address[0], int(httpd.server_address[1]))
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="obs-http",
        )
        self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5)
