"""Seeded random-number utilities.

Every stochastic component in the library takes a
:class:`numpy.random.Generator`; this module centralises how those
generators are created, split into independent streams and serialised
across process boundaries.

Reproducibility contract
------------------------
* ``make_rng(seed)`` with the same ``seed`` always yields an identical
  stream.
* ``spawn(rng, n)`` derives ``n`` statistically independent child
  generators; the children are a deterministic function of the parent's
  state, so a whole parallel run is reproducible from one root seed.
* Worker processes receive *seeds* (plain integers), never generator
  objects, so serial and parallel runs with the same root seed agree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "spawn_seeds", "ensure_rng"]

#: Upper bound (exclusive) for integer seeds handed to worker processes.
_SEED_BOUND = 2**63 - 1


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` produces an OS-entropy seeded generator (non-reproducible);
    tests and benchmarks should always pass an explicit seed.
    """
    return np.random.default_rng(seed)


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a Generator.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh entropy).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return make_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the bit-generator's jumped/spawned streams so children never
    overlap with each other or the parent.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Draw ``n`` integer seeds suitable for seeding worker processes."""
    if n < 0:
        raise ValueError(f"cannot draw a negative number of seeds: {n}")
    return [int(s) for s in rng.integers(0, _SEED_BOUND, size=n)]


def stream_for(root_seed: int, *tags: Sequence[int] | int) -> np.random.Generator:
    """Deterministically derive a stream for a tagged component.

    ``stream_for(seed, step, island)`` always returns the same stream for
    the same ``(seed, step, island)`` tuple, regardless of call order —
    used by the island runtime so each (prediction step, island) pair has
    its own reproducible randomness.
    """
    entropy = [root_seed]
    for t in tags:
        if isinstance(t, (list, tuple)):
            entropy.extend(int(x) for x in t)
        else:
            entropy.append(int(t))
    return np.random.default_rng(np.random.SeedSequence(entropy))
