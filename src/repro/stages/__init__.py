"""The DDM-MOS pipeline stages shared by every prediction system.

Per prediction step (Figs. 1–3):

* :mod:`~repro.stages.statistical` — **SS**: aggregate the burned maps
  of the selected scenarios into a per-cell ignition-probability matrix.
* :mod:`~repro.stages.calibration` — **CS**: search the Key Ignition
  Value ``Kign`` whose thresholding of the probability matrix best
  matches the current real fire (the ``SKign`` block).
* :mod:`~repro.stages.prediction` — **PS**: threshold the *current*
  probability matrix with the *previous* step's ``Kign`` to produce the
  predicted fire line PFL.
"""

from repro.stages.statistical import ProbabilityMap, aggregate_burned_maps
from repro.stages.calibration import CalibrationResult, search_kign
from repro.stages.prediction import PredictionOutput, predict

__all__ = [
    "ProbabilityMap",
    "aggregate_burned_maps",
    "CalibrationResult",
    "search_kign",
    "PredictionOutput",
    "predict",
]
