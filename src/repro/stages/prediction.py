"""Prediction Stage (PS): produce the predicted fire line PFL.

"The matrix obtained by applying the threshold Kign_n is used to perform
the fire line prediction for the current time step. The new value
Kign_{n+1} will be used in the next prediction step" (§II-A). Hence the
PS for step *i* thresholds the **current** probability matrix with the
Kign calibrated at step *i−1* — which is why "the prediction cannot
start at the first time instant".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitness import jaccard_fitness
from repro.errors import CalibrationError
from repro.grid.firemap import fire_line
from repro.stages.statistical import ProbabilityMap

__all__ = ["PredictionOutput", "predict"]


@dataclass(frozen=True)
class PredictionOutput:
    """One step's prediction and (if reality is supplied) its quality.

    Attributes
    ----------
    burned:
        Predicted burned region (PFL as a filled mask).
    fire_line:
        Frontier cells of the prediction (the PFL proper).
    kign:
        The threshold used (from the previous step's CS).
    quality:
        Eq. 3 fitness of the prediction against the real map, or
        ``nan`` when no real map was provided (true forecasting mode).
    """

    burned: np.ndarray
    fire_line: np.ndarray
    kign: float
    quality: float


def predict(
    probability: ProbabilityMap,
    kign: float,
    real_burned: np.ndarray | None = None,
    pre_burned: np.ndarray | None = None,
) -> PredictionOutput:
    """Run the PS for one step.

    Parameters
    ----------
    probability:
        SS output for the current step.
    kign:
        Key Ignition Value calibrated at the *previous* step.
    real_burned:
        Really burned cells at the current instant; when given, the
        prediction quality (Eq. 3, excluding ``pre_burned``) is
        evaluated — this is how the lineage papers score their systems.
    pre_burned:
        Cells burned before the step started.
    """
    if not np.isfinite(kign) or kign < 0:
        raise CalibrationError(f"kign must be a non-negative finite value: {kign}")
    burned = probability.threshold(kign)
    if pre_burned is not None:
        # The region burned before the step is part of the predicted
        # burned area by definition (fire does not unburn).
        burned = burned | np.asarray(pre_burned, dtype=bool)
    quality = float("nan")
    if real_burned is not None:
        quality = jaccard_fitness(real_burned, burned, pre_burned)
    return PredictionOutput(
        burned=burned,
        fire_line=fire_line(burned),
        kign=float(kign),
        quality=quality,
    )
