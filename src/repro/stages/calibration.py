"""Calibration Stage (CS): the Key Ignition Value search (``SKign``).

"A probability map is computed to obtain a threshold value called Key
Ignition Value, or Kign, which best represents the fire behavior pattern
for the given simulation step. This value is obtained by searching for a
threshold value that, when applied to the probability matrix, produces
the best prediction in terms of the fitness function for the current
time step" (§II-A).

Because the probability matrix only attains the discrete levels
``{0, 1/n, …, 1}`` (n = number of aggregated maps), the search space is
finite and the exhaustive scan over distinct levels is *exact* — no
golden-section or grid approximation is needed. The scan is vectorised:
one pass builds per-level cumulative counts instead of thresholding the
matrix per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitness import jaccard_from_counts
from repro.errors import CalibrationError
from repro.stages.statistical import ProbabilityMap

__all__ = ["CalibrationResult", "search_kign"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the ``SKign`` search.

    Attributes
    ----------
    kign:
        The best threshold (one of the attainable probability levels).
    fitness:
        Eq. 3 fitness of ``probability >= kign`` against the real map.
    candidates_tested:
        Number of distinct levels scanned.
    """

    kign: float
    fitness: float
    candidates_tested: int


def search_kign(
    probability: ProbabilityMap,
    real_burned: np.ndarray,
    pre_burned: np.ndarray | None = None,
) -> CalibrationResult:
    """Exhaustive-exact ``SKign``: maximise Eq. 3 over attainable levels.

    Parameters
    ----------
    probability:
        The SS output for the current step.
    real_burned:
        Really burned cells at the current instant (region enclosed by
        RFL_i).
    pre_burned:
        Cells burned before the step began (region of RFL_{i−1});
        excluded from the fitness per Eq. 3.

    Ties are broken towards the *largest* threshold (the most
    conservative prediction among equally good ones).
    """
    p = probability.probabilities
    real = np.asarray(real_burned, dtype=bool)
    if real.shape != p.shape:
        raise CalibrationError(
            f"real map shape {real.shape} != probability shape {p.shape}"
        )
    if pre_burned is not None:
        keep = ~np.asarray(pre_burned, dtype=bool)
        if keep.shape != p.shape:
            raise CalibrationError(
                f"pre-burned shape {keep.shape} != probability shape {p.shape}"
            )
    else:
        keep = np.ones_like(real)

    real_k = real & keep
    n_real = int(real_k.sum())

    # Candidate thresholds: every attainable non-zero level. Level 0 is
    # excluded (kign=0 predicts the entire map burns, which the lineage
    # systems never emit); a level above the maximum ("predict nothing")
    # is appended so an all-noise matrix can still calibrate sanely.
    levels = probability.levels()
    candidates = levels[levels > 0.0]
    nothing = np.nextafter(1.0, 2.0) if candidates.size == 0 else None

    # Vectorised scan: sort cells by probability once, then for each
    # candidate threshold t the predicted set is a suffix of the sorted
    # order; suffix sums give |B| and |A∩B| in O(cells log cells) total.
    flat_p = p[keep].ravel()
    flat_real = real_k[keep].ravel()
    order = np.argsort(flat_p, kind="stable")
    sorted_p = flat_p[order]
    sorted_real = flat_real[order]
    # suffix counts: number of predicted/true-positive cells at threshold
    suffix_total = np.arange(flat_p.size, 0, -1)
    suffix_real = np.cumsum(sorted_real[::-1])[::-1]

    best_k = float(nothing) if nothing is not None else float(candidates[0])
    best_fit = -1.0
    tested = 0
    cand_list = candidates if candidates.size else np.asarray([best_k])
    for t in cand_list:
        idx = np.searchsorted(sorted_p, t, side="left")
        n_pred = int(suffix_total[idx]) if idx < flat_p.size else 0
        n_inter = int(suffix_real[idx]) if idx < flat_p.size else 0
        union = n_real + n_pred - n_inter
        fit = jaccard_from_counts(n_inter, union)
        tested += 1
        if fit >= best_fit:  # >= keeps the largest threshold on ties
            best_fit = fit
            best_k = float(t)
    if nothing is not None:
        best_fit = jaccard_from_counts(0, n_real)
        tested = 1

    return CalibrationResult(kign=best_k, fitness=best_fit, candidates_tested=tested)
