"""Statistical Stage (SS): the ignition-probability matrix.

"The first step is for the Master to aggregate the resulting maps into a
matrix in which each cell represents the probability of ignition of that
region" (§II-A). Each selected scenario contributes its simulated burned
map; the per-cell probability is the (optionally weighted) fraction of
maps in which the cell burned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError

__all__ = ["ProbabilityMap", "aggregate_burned_maps", "aggregate_scenarios"]


@dataclass(frozen=True)
class ProbabilityMap:
    """Per-cell ignition probability in [0, 1].

    ``n_maps`` records how many scenario maps were aggregated — the CS
    uses it to enumerate the distinct attainable probability levels.
    """

    probabilities: np.ndarray
    n_maps: int

    def __post_init__(self) -> None:
        p = np.asarray(self.probabilities, dtype=np.float64)
        if p.ndim != 2:
            raise CalibrationError(
                f"probability matrix must be 2-D, got shape {p.shape}"
            )
        if (p < 0).any() or (p > 1).any():
            raise CalibrationError("probabilities must lie in [0, 1]")
        if self.n_maps < 1:
            raise CalibrationError(f"n_maps must be >= 1, got {self.n_maps}")
        object.__setattr__(self, "probabilities", p)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape."""
        return self.probabilities.shape  # type: ignore[return-value]

    def threshold(self, kign: float) -> np.ndarray:
        """Burned mask predicted by a Key Ignition Value.

        A cell is predicted to burn when its ignition probability
        reaches ``kign``. ``kign = 0`` predicts everything; values
        above 1 predict nothing.
        """
        return self.probabilities >= kign

    def levels(self) -> np.ndarray:
        """Distinct attainable probability levels, ascending.

        With ``n`` aggregated maps these are a subset of
        ``{0, 1/n, ..., 1}``; the CS only needs to test thresholds at
        the distinct non-zero levels (plus one above the maximum).
        """
        return np.unique(self.probabilities)


def aggregate_burned_maps(
    burned_maps: np.ndarray,
    weights: np.ndarray | None = None,
) -> ProbabilityMap:
    """Build the SS probability matrix from a stack of burned masks.

    Parameters
    ----------
    burned_maps:
        Boolean stack ``(n, H, W)`` — one simulated burned map per
        selected scenario (the bestSet in ESS-NS, the final population
        in ESS/ESSIM).
    weights:
        Optional per-map non-negative weights (e.g. fitness-
        proportional aggregation, an ESS variant). ``None`` = uniform,
        the paper's formulation.
    """
    stack = np.asarray(burned_maps, dtype=bool)
    if stack.ndim != 3 or stack.shape[0] < 1:
        raise CalibrationError(
            f"need a (n>=1, H, W) stack of burned maps, got shape {stack.shape}"
        )
    n = stack.shape[0]
    if weights is None:
        probs = stack.mean(axis=0)
    else:
        w = np.asarray(weights, dtype=np.float64).reshape(-1)
        if w.shape[0] != n:
            raise CalibrationError(
                f"{w.shape[0]} weights for {n} maps"
            )
        if (w < 0).any():
            raise CalibrationError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            # All-zero weights: fall back to uniform rather than 0/0.
            probs = stack.mean(axis=0)
        else:
            probs = np.tensordot(w / total, stack.astype(np.float64), axes=1)
    return ProbabilityMap(probabilities=probs, n_maps=n)


def aggregate_scenarios(
    engine,
    genomes: np.ndarray,
    weights: np.ndarray | None = None,
) -> ProbabilityMap:
    """Run one solution set through an engine and aggregate — the whole SS.

    ``engine`` is anything exposing ``burned_maps`` (a
    :class:`~repro.engine.SimulationEngine`, typically a run-scoped
    session's step view); simulation accounting lands in the engine's
    stats like every other batch.
    """
    genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
    if genomes.shape[0] == 0:
        raise CalibrationError(
            "cannot aggregate an empty solution set into a probability map"
        )
    return aggregate_burned_maps(engine.burned_maps(genomes), weights=weights)
