"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows without writing a script:

* ``simulate`` — run one fire simulation on a canonical case terrain
  and print burned-area statistics (the fireLib-style use).
* ``run`` — run one prediction system on a case and print the per-step
  table; optionally save the result as JSON.
* ``compare`` — run several systems on the same case and print the E1
  quality-per-step comparison.
* ``sweep`` — run a full systems × cases × seeds grid and print the
  aggregated table.

``compare`` and ``sweep`` are thin *plan builders*: they assemble a
declarative :class:`~repro.experiments.plan.ExperimentPlan` from the
flags (or load one from ``--plan``) and hand execution to the
experiment layer, which shares one engine session per (case, backend)
group and can stream results into a resumable ``--results`` store.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.metrics import compare_runs
from repro.analysis.reporting import (
    format_comparison,
    format_experiment,
    format_run,
    format_sweep,
)
from repro.analysis.sweeps import SweepResult
from repro.core.scenario import Scenario
from repro.engine import backend_names
from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
)
from repro.firelib.simulator import FireSimulator
from repro.rng import make_rng
from repro.systems.factory import SYSTEM_NAMES as _SYSTEM_NAMES
from repro.systems.factory import build_system as _build_system
from repro.workloads.cases import CASE_BUILDERS

__all__ = ["main", "build_system"]


def build_system(
    name: str,
    population: int = 16,
    generations: int = 6,
    n_workers: int = 1,
    tuning: str = "both",
    backend: str = "reference",
    cache_size: int = 0,
    session_cache_size: int = 0,
):
    """Construct a prediction system by CLI name with matched budgets.

    Thin wrapper over :func:`repro.systems.factory.build_system` that
    turns unknown names into a clean CLI exit instead of a traceback.
    """
    try:
        return _build_system(
            name,
            population=population,
            generations=generations,
            n_workers=n_workers,
            tuning=tuning,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def _add_budget(parser: argparse.ArgumentParser) -> None:
    """Search/engine budget flags shared by run, compare and sweep."""
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="reference",
        help="simulation-engine backend for fitness evaluation "
        "(pair 'process' with --workers for a real pool size)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="per-step LRU scenario-result cache capacity (0 = off)",
    )
    parser.add_argument(
        "--session-cache-size",
        type=int,
        default=0,
        help="run-scoped cross-step result cache capacity, shared by "
        "all prediction steps of a run — and, under a shared experiment "
        "session, by every system of a (case, backend) group (0 = off; "
        "replaces --cache-size when set)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    parser.add_argument("--size", type=int, default=44, help="grid side, cells")
    parser.add_argument("--steps", type=int, default=3, help="prediction steps")
    parser.add_argument("--seed", type=int, default=42)
    _add_budget(parser)


def _cmd_simulate(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=2)
    scenario = Scenario(
        model=args.model,
        wind_speed=args.wind_speed,
        wind_dir=args.wind_dir,
        m1=args.m1,
        m10=args.m1 + 1,
        m100=args.m1 + 2,
        mherb=args.mherb,
        slope=args.slope,
        aspect=args.aspect,
    )
    sim = FireSimulator(fire.terrain)
    result = sim.simulate(
        scenario, [fire.terrain.center()], horizon=args.minutes
    )
    burned = result.burned()
    print(f"terrain: {args.case} {fire.terrain.shape}")
    print(f"scenario: {scenario}")
    print(f"horizon: {args.minutes:g} min")
    print(f"burned cells: {int(burned.sum())} / {fire.terrain.n_cells}")
    print(f"max head-fire rate: {result.ros_max_ftmin:.2f} ft/min")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=args.steps)
    system = build_system(
        args.system,
        args.population,
        args.generations,
        args.workers,
        backend=args.backend,
        cache_size=args.cache_size,
        session_cache_size=args.session_cache_size,
    )
    # the whole run is reproducible from this one seeded repro.rng stream
    run = system.run(fire, rng=make_rng(args.seed))
    print(f"case: {fire.description}")
    print(format_run(run))
    if args.output:
        run.save_json(args.output)
        print(f"saved: {args.output}")
    return 0


def _budget(args: argparse.Namespace) -> BudgetSpec:
    """The plan budget encoded by the common CLI flags."""
    return BudgetSpec(
        population=args.population,
        generations=args.generations,
        n_workers=args.workers,
        cache_size=args.cache_size,
        session_cache_size=args.session_cache_size,
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    names = tuple(n.strip() for n in args.systems.split(","))
    try:
        plan = ExperimentPlan(
            name="compare",
            systems=names,
            cases=(CaseSpec(args.case, size=args.size, steps=args.steps),),
            seeds=(args.seed,),
            backends=(args.backend,),
            budget=_budget(args),
        )
        runner = ExperimentRunner(share_sessions=not args.isolated_sessions)
        result = runner.run(plan)
    except ReproError as exc:
        _exit_on_user_error(exc)
        raise
    case = plan.cases[0]
    print(f"case: {case.name} {case.size}x{case.size}, {case.steps} steps")
    print(format_comparison(compare_runs(result.runs())))
    print(format_experiment(result))
    return 0


#: User-input failures worth a clean one-line exit: bad plan payloads,
#: non-numeric seeds, unreadable/unwritable artifact paths. Runtime
#: failures inside the experiment itself keep their tracebacks.
_USER_ERRORS = (ReproError, OSError, ValueError)


def _exit_on_user_error(exc: ReproError) -> None:
    """Convert exactly :class:`ReproError` into a clean one-line exit.

    Its runtime subclasses (``SimulationError``, ``EvolutionError``,
    ``ParallelError``) are failures *inside* the experiment and keep
    their tracebacks — a cell dying hours into a sweep must stay
    diagnosable.
    """
    if type(exc) is ReproError:
        raise SystemExit(str(exc)) from exc


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        if args.plan:
            plan = ExperimentPlan.load_json(args.plan)
            print(
                f"plan loaded: {args.plan} (the plan file governs "
                "systems/cases/seeds/backend/budget; the corresponding "
                "grid flags are ignored)"
            )
        else:
            seeds = tuple(
                args.seed + int(s) for s in args.seeds.split(",") if s.strip()
            )
            plan = ExperimentPlan(
                name=args.name,
                systems=tuple(s.strip() for s in args.systems.split(",")),
                cases=tuple(
                    CaseSpec(c.strip(), size=args.size, steps=args.steps)
                    for c in args.cases.split(",")
                ),
                seeds=seeds,
                backends=(args.backend,),
                budget=_budget(args),
            )
        if args.save_plan:
            plan.save_json(args.save_plan)
            print(f"plan saved: {args.save_plan}")
        store = None
        if args.results:
            store = ResultsStore(args.results)
            # surface an unwritable results path now, as a clean exit,
            # rather than as a traceback after the first completed run
            store.path.parent.mkdir(parents=True, exist_ok=True)
            with open(store.path, "a"):
                pass
        if args.output:
            # same eager check for --output: without a --results store
            # an unwritable path here would discard the whole sweep
            with open(args.output, "a"):
                pass
    except _USER_ERRORS as exc:
        raise SystemExit(str(exc)) from exc
    runner = ExperimentRunner(
        store=store, share_sessions=not args.isolated_sessions
    )
    try:
        result = runner.run(plan, shards=args.shards)
    except ReproError as exc:
        _exit_on_user_error(exc)
        raise
    sweep = SweepResult.from_records(
        result.records,
        systems=list(plan.systems),
        cases=[c.name for c in plan.cases],
    )
    print(format_sweep(sweep))
    print(format_experiment(result))
    if args.output:
        try:
            sweep.save_json(args.output)
        except OSError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"saved: {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESS-NS wildfire-prediction reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one fire simulation")
    p_sim.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    p_sim.add_argument("--size", type=int, default=60)
    p_sim.add_argument("--minutes", type=float, default=45.0)
    p_sim.add_argument("--model", type=int, default=1)
    p_sim.add_argument("--wind-speed", type=float, default=8.0)
    p_sim.add_argument("--wind-dir", type=float, default=90.0)
    p_sim.add_argument("--m1", type=float, default=6.0)
    p_sim.add_argument("--mherb", type=float, default=60.0)
    p_sim.add_argument("--slope", type=float, default=5.0)
    p_sim.add_argument("--aspect", type=float, default=270.0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_run = sub.add_parser("run", help="run one prediction system")
    p_run.add_argument("system", choices=_SYSTEM_NAMES)
    _add_common(p_run)
    p_run.add_argument("--output", help="save the run as JSON")
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare systems on one case")
    p_cmp.add_argument(
        "--systems",
        default="ess,ess-ns",
        help="comma-separated list from: " + ", ".join(_SYSTEM_NAMES),
    )
    _add_common(p_cmp)
    p_cmp.add_argument(
        "--isolated-sessions",
        action="store_true",
        help="give every system its own engine session instead of "
        "sharing one across the compared systems",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_swp = sub.add_parser(
        "sweep", help="run a systems × cases × seeds experiment grid"
    )
    p_swp.add_argument(
        "--systems",
        default="ess,ess-ns",
        help="comma-separated list from: " + ", ".join(_SYSTEM_NAMES),
    )
    p_swp.add_argument(
        "--cases",
        default="grassland",
        help="comma-separated list from: " + ", ".join(sorted(CASE_BUILDERS)),
    )
    p_swp.add_argument("--size", type=int, default=44, help="grid side, cells")
    p_swp.add_argument("--steps", type=int, default=3, help="prediction steps")
    p_swp.add_argument(
        "--seeds",
        default="0,1",
        help="comma-separated repeat seeds (each offset by --seed)",
    )
    p_swp.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed added to every --seeds entry; together with the "
        "plan it makes every recorded run reproducible",
    )
    _add_budget(p_swp)
    p_swp.add_argument("--name", default="sweep", help="plan label")
    p_swp.add_argument(
        "--plan",
        help="load the experiment plan from this JSON file; the file "
        "then governs systems, cases, seeds, backend AND the whole "
        "budget (population/generations/workers/caches) — the "
        "corresponding flags are ignored",
    )
    p_swp.add_argument(
        "--save-plan", help="write the executed plan to this JSON file"
    )
    p_swp.add_argument(
        "--results",
        help="stream one JSONL record per completed run into this file; "
        "re-invoking with the same path resumes, computing only the "
        "missing (system, case, seed) cells",
    )
    p_swp.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run independent (case, backend) groups in this many "
        "processes (requires --results)",
    )
    p_swp.add_argument(
        "--isolated-sessions",
        action="store_true",
        help="give every run its own engine session instead of sharing "
        "one per (case, backend) group",
    )
    p_swp.add_argument("--output", help="save the aggregated sweep as JSON")
    p_swp.set_defaults(func=_cmd_sweep)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
