"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows without writing a script:

* ``simulate`` — run one fire simulation on a canonical case terrain
  and print burned-area statistics (the fireLib-style use).
* ``run`` — run one prediction system on a case and print the per-step
  table; optionally save the result as JSON.
* ``compare`` — run several systems on the same case and print the E1
  quality-per-step comparison; like ``sweep`` it takes ``--executor``,
  so a one-case grid can spread over a worker fleet cell by cell.
* ``sweep`` — run a full systems × cases × seeds grid and print the
  aggregated table; ``--executor`` picks where the grid's pending work
  units execute (inline, local shard processes, or a TCP worker
  fleet).
* ``experiments`` — distributed-execution utilities:
  ``serve-coordinator`` (lease a plan's work units to TCP workers),
  ``worker`` (join a coordinator's fleet), ``status`` (read-only fleet
  snapshot, optionally re-polled with ``--watch``), ``drain``
  (gracefully retire a worker — it finishes its lease, uploads its
  records and exits with nothing requeued) and ``merge-stores``
  (aggregate several JSONL results stores into one).
* ``serve`` — the always-on prediction service
  (:mod:`repro.service`): an HTTP gateway accepting plan submissions
  from many tenants plus a multi-plan fleet coordinator feeding one
  elastic worker pool under cost-weighted fair-share scheduling.
* ``obs`` — observability utilities: ``timeline`` merges the fleet's
  ``--trace`` JSONL files into one Perfetto-loadable Chrome
  trace-event timeline.

``compare`` and ``sweep`` are thin *plan builders*: they assemble a
declarative :class:`~repro.experiments.plan.ExperimentPlan` from the
flags (or load one from ``--plan``) and hand execution to the
experiment layer, which shares one engine session per (case, backend)
group and can stream results into a resumable ``--results`` store.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from typing import Sequence

import numpy as np

from repro import obs
from repro.analysis.metrics import compare_runs
from repro.analysis.reporting import (
    format_comparison,
    format_experiment,
    format_run,
    format_sweep,
)
from repro.analysis.sweeps import SweepResult
from repro.core.scenario import Scenario
from repro.distributed import (
    FleetError,
    FleetExecutor,
    ProcessShardExecutor,
    run_worker,
)
from repro.distributed.protocol import request as _fleet_request
from repro.distributed.worker import parse_address
from repro.engine import backend_names
from repro.errors import ReproError
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
)
from repro.experiments.costs import DEFAULT_SLOW_UNIT_FACTOR
from repro.firelib.simulator import FireSimulator
from repro.obs.http import ObsHTTPServer
from repro.obs.timeline import export_timeline
from repro.rng import make_rng
from repro.systems.factory import SYSTEM_NAMES as _SYSTEM_NAMES
from repro.systems.factory import build_system as _build_system
from repro.workloads.cases import CASE_BUILDERS

__all__ = ["main", "build_system"]


def build_system(
    name: str,
    population: int = 16,
    generations: int = 6,
    n_workers: int = 1,
    tuning: str = "both",
    backend: str = "reference",
    cache_size: int = 0,
    session_cache_size: int = 0,
):
    """Construct a prediction system by CLI name with matched budgets.

    Thin wrapper over :func:`repro.systems.factory.build_system` that
    turns unknown names into a clean CLI exit instead of a traceback.
    """
    try:
        return _build_system(
            name,
            population=population,
            generations=generations,
            n_workers=n_workers,
            tuning=tuning,
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def _add_budget(parser: argparse.ArgumentParser) -> None:
    """Search/engine budget flags shared by run, compare and sweep."""
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="reference",
        help="simulation-engine backend for fitness evaluation "
        "(pair 'process' with --workers for a real pool size)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="per-step LRU scenario-result cache capacity (0 = off)",
    )
    parser.add_argument(
        "--session-cache-size",
        type=int,
        default=0,
        help="run-scoped cross-step result cache capacity, shared by "
        "all prediction steps of a run — and, under a shared experiment "
        "session, by every system of a (case, backend) group (0 = off; "
        "replaces --cache-size when set)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by run, compare, sweep and the fleet
    entry points (see :mod:`repro.obs`)."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="stream telemetry span events (one JSON object per line: "
        "run/step/generation/unit spans, fleet summaries) into this "
        "JSONL file",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a Prometheus-text metrics snapshot (engine batch "
        "timings, cache hit/miss counters, fleet utilization) to this "
        "file when the command finishes",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable stderr logging at this level (the "
        "repro.distributed.* loggers narrate lease/steal/requeue/drain "
        "events; default: logging stays unconfigured)",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live observability over HTTP on 127.0.0.1:PORT "
        "while the command runs: /metrics (Prometheus text of the "
        "process registry — under a fleet coordinator that includes "
        "the folded per-worker series), /healthz, and /status (JSON "
        "fleet snapshot when a coordinator is live, read-only; 0 = "
        "OS-assigned, the bound address is printed)",
    )


#: The live observability HTTP server, when ``--http-port`` asked for
#: one (started in :func:`_setup_obs`, closed in :func:`_teardown_obs`).
_http_server: ObsHTTPServer | None = None


def _setup_obs(args: argparse.Namespace) -> None:
    """Wire the parsed telemetry flags into the process registry."""
    global _http_server
    level = getattr(args, "log_level", None)
    if level:
        logging.basicConfig(
            level=getattr(logging, level.upper()),
            format="%(asctime)s %(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    trace = getattr(args, "trace", None)
    if trace:
        obs.configure(trace_path=trace)
    http_port = getattr(args, "http_port", None)
    if http_port is not None:
        server = ObsHTTPServer(port=http_port)
        try:
            host, port = server.start()
        except OSError as exc:
            raise SystemExit(
                f"could not bind the observability HTTP server on port "
                f"{http_port}: {exc}"
            ) from exc
        _http_server = server
        print(f"observability http on {host}:{port}", flush=True)


def _teardown_obs(args: argparse.Namespace) -> None:
    """Snapshot metrics (if asked) and close the trace sinks."""
    global _http_server
    if _http_server is not None:
        _http_server.close()
        _http_server = None
    metrics = getattr(args, "metrics", None)
    if metrics:
        try:
            obs.dump_metrics(metrics)
        except OSError as exc:
            print(f"could not write metrics snapshot: {exc}", file=sys.stderr)
    obs.shutdown()


def _add_fleet(parser: argparse.ArgumentParser) -> None:
    """Coordinator address/lease flags shared by sweep and serve."""
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="coordinator listen address (0.0.0.0 to accept remote "
        "workers)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="coordinator listen port (0 = OS-assigned; the bound "
        "address is printed either way)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds of worker silence after which its leased work "
        "unit is handed to another worker (workers heartbeat at a "
        "quarter of this)",
    )
    parser.add_argument(
        "--min-unit-cells",
        type=int,
        default=1,
        help="work-stealing floor: when a worker asks and only one "
        "pending unit remains, it is split in half as long as both "
        "halves keep at least this many (system, case, seed, backend) "
        "cells; 0 disables splitting (whole-group leases)",
    )
    parser.add_argument(
        "--scheduling",
        choices=("cost", "halving"),
        default="cost",
        help="lease scheduling policy: 'cost' (default) packs units by "
        "predicted cost, sizes leases to each worker's measured "
        "throughput and piggybacks the next lease on every complete "
        "report; 'halving' restores the original largest-whole/"
        "split-last policy",
    )
    parser.add_argument(
        "--target-unit-seconds",
        type=float,
        default=1.0,
        help="cost scheduling's per-lease wall-clock target: leases "
        "grow until a unit is predicted to take about this long, with "
        "--min-unit-cells as the floor",
    )
    parser.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_FLEET_TOKEN"),
        help="shared secret for the coordinator's HMAC challenge-"
        "response handshake; unauthenticated peers are rejected before "
        "any plan bytes are sent (default: $REPRO_FLEET_TOKEN; unset "
        "disables authentication)",
    )
    parser.add_argument(
        "--slow-unit-factor",
        type=float,
        default=DEFAULT_SLOW_UNIT_FACTOR,
        help="emit a slow_unit trace event when a completed unit "
        "exceeds its cost-model prediction by this factor (its "
        "observed/predicted ratio always lands in the "
        "repro_cost_residual_ratio histogram; 0 disables the event)",
    )


def _add_executor(parser: argparse.ArgumentParser) -> None:
    """``--shards``/``--executor`` + fleet flags (compare and sweep)."""
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run pending work units in this many local processes "
        "(requires --results; sugar for --executor process)",
    )
    parser.add_argument(
        "--executor",
        choices=("inline", "process", "fleet"),
        default="inline",
        help="where the plan's pending work units execute: in this "
        "process (inline, honouring --shards), in local shard "
        "processes (process), or leased cell-by-cell to TCP workers "
        "started with 'repro experiments worker' (fleet; requires "
        "--results and honours --host/--port/--lease-timeout/"
        "--min-unit-cells/--auth-token)",
    )
    _add_fleet(parser)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    parser.add_argument("--size", type=int, default=44, help="grid side, cells")
    parser.add_argument("--steps", type=int, default=3, help="prediction steps")
    parser.add_argument("--seed", type=int, default=42)
    _add_budget(parser)


def _cmd_simulate(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=2)
    scenario = Scenario(
        model=args.model,
        wind_speed=args.wind_speed,
        wind_dir=args.wind_dir,
        m1=args.m1,
        m10=args.m1 + 1,
        m100=args.m1 + 2,
        mherb=args.mherb,
        slope=args.slope,
        aspect=args.aspect,
    )
    sim = FireSimulator(fire.terrain)
    result = sim.simulate(
        scenario, [fire.terrain.center()], horizon=args.minutes
    )
    burned = result.burned()
    print(f"terrain: {args.case} {fire.terrain.shape}")
    print(f"scenario: {scenario}")
    print(f"horizon: {args.minutes:g} min")
    print(f"burned cells: {int(burned.sum())} / {fire.terrain.n_cells}")
    print(f"max head-fire rate: {result.ros_max_ftmin:.2f} ft/min")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=args.steps)
    system = build_system(
        args.system,
        args.population,
        args.generations,
        args.workers,
        backend=args.backend,
        cache_size=args.cache_size,
        session_cache_size=args.session_cache_size,
    )
    # the whole run is reproducible from this one seeded repro.rng stream
    run = system.run(fire, rng=make_rng(args.seed))
    print(f"case: {fire.description}")
    print(format_run(run))
    if args.output:
        run.save_json(args.output)
        print(f"saved: {args.output}")
    return 0


def _budget(args: argparse.Namespace) -> BudgetSpec:
    """The plan budget encoded by the common CLI flags."""
    return BudgetSpec(
        population=args.population,
        generations=args.generations,
        n_workers=args.workers,
        cache_size=args.cache_size,
        session_cache_size=args.session_cache_size,
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    names = tuple(n.strip() for n in args.systems.split(","))
    try:
        plan = ExperimentPlan(
            name="compare",
            systems=names,
            cases=(CaseSpec(args.case, size=args.size, steps=args.steps),),
            seeds=(args.seed,),
            backends=(args.backend,),
            budget=_budget(args),
        )
        store = _open_results_store(args.results) if args.results else None
    except _USER_ERRORS as exc:
        raise SystemExit(str(exc)) from exc
    runner = ExperimentRunner(
        store=store, share_sessions=not args.isolated_sessions
    )
    try:
        executor = _make_executor(args)
        if executor is not None:
            result = runner.run(plan, executor=executor)
        else:
            result = runner.run(plan, shards=args.shards)
    except ReproError as exc:
        _exit_on_user_error(exc)
        raise
    case = plan.cases[0]
    print(f"case: {case.name} {case.size}x{case.size}, {case.steps} steps")
    print(format_comparison(compare_runs(result.runs())))
    print(format_experiment(result))
    return 0


#: User-input failures worth a clean one-line exit: bad plan payloads,
#: non-numeric seeds, unreadable/unwritable artifact paths. Runtime
#: failures inside the experiment itself keep their tracebacks.
_USER_ERRORS = (ReproError, OSError, ValueError)


def _exit_on_user_error(exc: ReproError) -> None:
    """Convert exactly :class:`ReproError` into a clean one-line exit.

    Its runtime subclasses (``SimulationError``, ``EvolutionError``,
    ``ParallelError``) are failures *inside* the experiment and keep
    their tracebacks — a cell dying hours into a sweep must stay
    diagnosable.
    """
    if type(exc) is ReproError:
        raise SystemExit(str(exc)) from exc


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        if args.plan:
            plan = ExperimentPlan.load_json(args.plan)
            print(
                f"plan loaded: {args.plan} (the plan file governs "
                "systems/cases/seeds/backend/budget; the corresponding "
                "grid flags are ignored)"
            )
        else:
            seeds = tuple(
                args.seed + int(s) for s in args.seeds.split(",") if s.strip()
            )
            plan = ExperimentPlan(
                name=args.name,
                systems=tuple(s.strip() for s in args.systems.split(",")),
                cases=tuple(
                    CaseSpec(c.strip(), size=args.size, steps=args.steps)
                    for c in args.cases.split(",")
                ),
                seeds=seeds,
                backends=(args.backend,),
                budget=_budget(args),
            )
        if args.save_plan:
            plan.save_json(args.save_plan)
            print(f"plan saved: {args.save_plan}")
        store = None
        if args.results:
            store = _open_results_store(args.results)
        if args.output:
            # same eager check for --output: without a --results store
            # an unwritable path here would discard the whole sweep
            with open(args.output, "a"):
                pass
    except _USER_ERRORS as exc:
        raise SystemExit(str(exc)) from exc
    runner = ExperimentRunner(
        store=store, share_sessions=not args.isolated_sessions
    )
    try:
        executor = _make_executor(args)
        if executor is not None:
            result = runner.run(plan, executor=executor)
        else:
            # --shards N stays sugar for the process executor
            result = runner.run(plan, shards=args.shards)
    except ReproError as exc:
        _exit_on_user_error(exc)
        raise
    sweep = SweepResult.from_records(
        result.records,
        systems=list(plan.systems),
        cases=[c.name for c in plan.cases],
    )
    print(format_sweep(sweep))
    print(format_experiment(result))
    if args.output:
        try:
            sweep.save_json(args.output)
        except OSError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"saved: {args.output}")
    return 0


def _make_executor(args: argparse.Namespace):
    """The work executor the ``--executor`` flags describe (or ``None``
    for the inline default, which honours ``--shards`` sugar)."""
    if args.executor == "process":
        return ProcessShardExecutor(
            args.shards,
            min_unit_cells=args.min_unit_cells,
            scheduling=args.scheduling,
        )
    if args.executor == "fleet":
        return FleetExecutor(
            host=args.host,
            port=args.port,
            lease_timeout=args.lease_timeout,
            min_unit_cells=args.min_unit_cells,
            scheduling=args.scheduling,
            target_unit_seconds=args.target_unit_seconds,
            auth_token=args.auth_token,
            slow_unit_factor=args.slow_unit_factor,
            on_bound=_announce_coordinator,
        )
    return None


def _announce_coordinator(address: tuple[str, int]) -> None:
    """Print the bound coordinator address (workers need it to join)."""
    print(f"coordinator listening on {address[0]}:{address[1]}", flush=True)


def _open_results_store(path: str) -> ResultsStore:
    """A results store whose path is verified writable *now*."""
    store = ResultsStore(path)
    # surface an unwritable results path immediately, as a clean exit,
    # rather than as a traceback after the first completed run
    store.path.parent.mkdir(parents=True, exist_ok=True)
    with open(store.path, "a"):
        pass
    return store


def _cmd_experiments_serve(args: argparse.Namespace) -> int:
    try:
        plan = ExperimentPlan.load_json(args.plan)
        store = _open_results_store(args.results)
    except _USER_ERRORS as exc:
        raise SystemExit(str(exc)) from exc
    executor = FleetExecutor(
        host=args.host,
        port=args.port,
        lease_timeout=args.lease_timeout,
        poll_interval=args.poll_interval,
        timeout=args.timeout,
        min_unit_cells=args.min_unit_cells,
        scheduling=args.scheduling,
        target_unit_seconds=args.target_unit_seconds,
        auth_token=args.auth_token,
        slow_unit_factor=args.slow_unit_factor,
        cost_snapshot=args.cost_snapshot,
        on_bound=_announce_coordinator,
    )
    runner = ExperimentRunner(
        store=store, share_sessions=not args.isolated_sessions
    )
    try:
        result = runner.run(plan, executor=executor)
    except FleetError as exc:
        raise SystemExit(str(exc)) from exc
    except ReproError as exc:
        _exit_on_user_error(exc)
        raise
    print(
        f"fleet complete: {len(result.records)} records "
        f"({result.n_resumed} resumed, {executor.requeues} unit "
        f"requeues, {executor.steals} unit steals) -> {store.path}"
    )
    if executor.worker_stats:
        print("fleet workers (busy/idle over membership span):")
        print(_format_worker_stats(executor.worker_stats))
    quantiles = _format_unit_seconds_quantiles()
    if quantiles:
        print(quantiles)
    print(format_experiment(result))
    return 0


def _format_unit_seconds_quantiles() -> str | None:
    """One-line p50/p95/max summary of completed-unit wall times.

    Reads the coordinator's ``repro_fleet_unit_seconds`` histogram from
    the process registry; ``None`` when no unit completed in-process.
    """
    for entry in obs.telemetry().snapshot():
        if (
            entry.get("name") == "repro_fleet_unit_seconds"
            and entry.get("type") == "histogram"
            and entry.get("count")
        ):
            p50 = obs.histogram_quantile(entry, 0.5)
            p95 = obs.histogram_quantile(entry, 0.95)
            return (
                f"unit seconds: p50 {p50:.2f}s, p95 {p95:.2f}s, "
                f"max {entry.get('max', 0.0):.2f}s "
                f"over {entry['count']} units"
            )
    return None


def _format_worker_stats(workers: dict[str, dict]) -> str:
    """Per-worker utilization lines (serve summary + status command)."""
    lines = []
    for worker in sorted(workers):
        st = workers[worker]
        util = st.get("utilization")
        util_text = "util n/a" if util is None else f"util {util:6.1%}"
        live = " [live]" if st.get("live") else ""
        throughput = st.get("throughput")
        rate_text = (
            "" if throughput is None else f", {throughput:.1f} cells/s"
        )
        trips = st.get("round_trips")
        trips_text = "" if trips is None else f", {trips} round-trips"
        lines.append(
            f"  {worker}: {util_text} "
            f"(busy {st['busy_seconds']:.1f}s / "
            f"idle {st['idle_seconds']:.1f}s), "
            f"{st['units']} units, {st['cells']} cells, "
            f"{st['leases']} leases{rate_text}{trips_text}{live}"
        )
    return "\n".join(lines)


def _probe_status(args: argparse.Namespace) -> dict:
    """One read-only ``status`` exchange with a coordinator.

    Raises :class:`SystemExit` with a clean one-line message on any
    failure — no coordinator listening, auth mismatch, or a non-status
    reply.
    """
    try:
        addr = parse_address(args.connect)
        reply = _fleet_request(
            addr,
            {"type": "status"},
            timeout=args.request_timeout,
            token=args.auth_token,
        )
    except FleetError as exc:
        raise SystemExit(str(exc)) from exc
    except OSError as exc:
        raise SystemExit(
            f"no coordinator answering at {args.connect}: {exc}"
        ) from exc
    if reply.get("type") != "status":
        raise SystemExit(
            f"coordinator rejected the status probe: "
            f"{reply.get('error', reply.get('type'))}"
        )
    return reply


def _print_status(reply: dict) -> None:
    """Render one status snapshot (shared by one-shot and --watch)."""
    progress = reply.get("progress") or {}
    state = "finished" if reply.get("finished") else "running"
    print(
        f"plan {reply.get('plan')!r}: {reply.get('recorded_cells')}/"
        f"{reply.get('expected_cells')} cells recorded ({state})"
    )
    print(
        f"pending units: {progress.get('pending_units')} "
        f"({progress.get('pending_cells')} cells), "
        f"leased: {progress.get('leased')}, "
        f"requeues: {progress.get('requeues')}, "
        f"steals: {progress.get('steals')}"
    )
    workers = reply.get("workers") or {}
    if workers:
        print("workers:")
        print(_format_worker_stats(workers))
    else:
        print("workers: none seen yet")
    costs = reply.get("costs")
    if isinstance(costs, dict):
        rates = costs.get("rates") or {}
        samples = costs.get("samples") or {}
        if rates:
            print("cost model (measured per-cell rates):")
            for kernel in sorted(rates):
                print(
                    f"  {kernel}: {rates[kernel] * 1000.0:.2f} ms/cell "
                    f"(n={samples.get(kernel, 0)})"
                )
        else:
            print("cost model: no measured rates yet (priors only)")


def _cmd_experiments_status(args: argparse.Namespace) -> int:
    """Read-only coordinator snapshot(s): one-shot, or --watch loop."""
    if not args.watch:
        _print_status(_probe_status(args))
        return 0
    if args.watch < 0:
        raise SystemExit(
            f"--watch must be a non-negative interval, got {args.watch:g}"
        )
    interval = max(args.watch, 0.2)  # protect the coordinator's accept loop
    probed_once = False
    try:
        while True:
            try:
                reply = _probe_status(args)
            except SystemExit:
                if not probed_once:
                    raise
                # a coordinator that answered before and is now gone
                # has finished (or died) — either way the watch is over
                print(f"coordinator at {args.connect} has gone away")
                return 0
            if sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            elif probed_once:
                print(f"--- {time.strftime('%H:%M:%S')} ---")
            probed_once = True
            _print_status(reply)
            if reply.get("finished"):
                return 0
            sys.stdout.flush()
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _cmd_experiments_worker(args: argparse.Namespace) -> int:
    try:
        summary = run_worker(
            args.connect,
            store_path=args.store,
            poll_interval=args.poll_interval,
            worker_id=args.id,
            auth_token=args.auth_token,
            throttle=args.throttle,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
        )
    except FleetError as exc:
        raise SystemExit(str(exc)) from exc
    ending = "drained" if summary.get("drained") else "done"
    print(
        f"worker {summary['worker']} {ending}: {summary['units']} units, "
        f"{summary['records']} records (local store: {summary['store']})"
    )
    return 0


def _cmd_experiments_drain(args: argparse.Namespace) -> int:
    """Ask a coordinator to gracefully retire one worker."""
    try:
        addr = parse_address(args.connect)
        reply = _fleet_request(
            addr,
            {"type": "drain", "target": args.worker},
            timeout=args.request_timeout,
            token=args.auth_token,
        )
    except FleetError as exc:
        raise SystemExit(str(exc)) from exc
    except OSError as exc:
        raise SystemExit(
            f"no coordinator answering at {args.connect}: {exc}"
        ) from exc
    if reply.get("type") != "ok":
        raise SystemExit(
            f"coordinator rejected the drain: "
            f"{reply.get('error', reply.get('type'))}"
        )
    print(
        f"worker {reply.get('draining')} draining: it finishes its "
        "leased unit, uploads its records and exits — nothing requeues"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on prediction service (HTTP + fleet ports)."""
    from repro.service import PredictionService, ServiceError

    try:
        service = PredictionService(
            args.spool,
            host=args.host,
            port=args.port,
            fleet_port=args.fleet_port,
            lease_timeout=args.lease_timeout,
            poll_interval=args.poll_interval,
            min_unit_cells=args.min_unit_cells,
            target_unit_seconds=args.target_unit_seconds,
            max_active=args.max_active,
            share_sessions=not args.isolated_sessions,
            auth_token=args.auth_token,
        )
    except (ServiceError, FleetError, OSError) as exc:
        raise SystemExit(str(exc)) from exc
    try:
        (gw_host, gw_port), (fl_host, fl_port) = service.start()
    except OSError as exc:
        raise SystemExit(f"could not bind the service: {exc}") from exc
    print(f"service http on {gw_host}:{gw_port}", flush=True)
    print(f"service fleet on {fl_host}:{fl_port}", flush=True)
    print(
        f"spool: {service.queue.spool} "
        f"(plans survive restarts; POST /plans to submit)",
        flush=True,
    )
    service.serve_forever()
    return 0


def _cmd_experiments_merge(args: argparse.Namespace) -> int:
    sources = [ResultsStore(p) for p in args.stores]
    missing = [str(s.path) for s in sources if not s.exists()]
    if missing:
        raise SystemExit(f"no such results store(s): {', '.join(missing)}")
    try:
        dest = _open_results_store(args.into)
        summary = dest.merge(*sources)
    except _USER_ERRORS as exc:
        raise SystemExit(str(exc)) from exc
    print(
        f"merged {summary['sources']} store(s) into {dest.path}: "
        f"{summary['records']} records, {summary['duplicates']} "
        "duplicate cells dropped (first writer wins)"
    )
    return 0


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    """Merge trace JSONL files into one Perfetto-loadable timeline."""
    try:
        summary = export_timeline(
            args.traces, args.output, trace_id=args.trace_id
        )
    except _USER_ERRORS as exc:
        raise SystemExit(str(exc)) from exc
    trace_ids = summary.get("trace_ids") or []
    ids_text = ", ".join(trace_ids) if trace_ids else "none tagged"
    print(
        f"timeline written: {args.output} ({summary.get('spans', 0)} "
        f"spans on {len(summary.get('tracks') or [])} track(s); "
        f"trace ids: {ids_text})"
    )
    if len(trace_ids) > 1 and not args.trace_id:
        print(
            "note: events from multiple trace ids were merged; pass "
            "--trace-id to isolate one run",
            file=sys.stderr,
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESS-NS wildfire-prediction reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one fire simulation")
    p_sim.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    p_sim.add_argument("--size", type=int, default=60)
    p_sim.add_argument("--minutes", type=float, default=45.0)
    p_sim.add_argument("--model", type=int, default=1)
    p_sim.add_argument("--wind-speed", type=float, default=8.0)
    p_sim.add_argument("--wind-dir", type=float, default=90.0)
    p_sim.add_argument("--m1", type=float, default=6.0)
    p_sim.add_argument("--mherb", type=float, default=60.0)
    p_sim.add_argument("--slope", type=float, default=5.0)
    p_sim.add_argument("--aspect", type=float, default=270.0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_run = sub.add_parser("run", help="run one prediction system")
    p_run.add_argument("system", choices=_SYSTEM_NAMES)
    _add_common(p_run)
    p_run.add_argument("--output", help="save the run as JSON")
    _add_obs(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare systems on one case")
    p_cmp.add_argument(
        "--systems",
        default="ess,ess-ns",
        help="comma-separated list from: " + ", ".join(_SYSTEM_NAMES),
    )
    _add_common(p_cmp)
    p_cmp.add_argument(
        "--isolated-sessions",
        action="store_true",
        help="give every system its own engine session instead of "
        "sharing one across the compared systems",
    )
    p_cmp.add_argument(
        "--results",
        help="stream one JSONL record per completed run into this file "
        "(resumable; required by --executor process/fleet)",
    )
    _add_executor(p_cmp)
    _add_obs(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_swp = sub.add_parser(
        "sweep", help="run a systems × cases × seeds experiment grid"
    )
    p_swp.add_argument(
        "--systems",
        default="ess,ess-ns",
        help="comma-separated list from: " + ", ".join(_SYSTEM_NAMES),
    )
    p_swp.add_argument(
        "--cases",
        default="grassland",
        help="comma-separated list from: " + ", ".join(sorted(CASE_BUILDERS)),
    )
    p_swp.add_argument("--size", type=int, default=44, help="grid side, cells")
    p_swp.add_argument("--steps", type=int, default=3, help="prediction steps")
    p_swp.add_argument(
        "--seeds",
        default="0,1",
        help="comma-separated repeat seeds (each offset by --seed)",
    )
    p_swp.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed added to every --seeds entry; together with the "
        "plan it makes every recorded run reproducible",
    )
    _add_budget(p_swp)
    p_swp.add_argument("--name", default="sweep", help="plan label")
    p_swp.add_argument(
        "--plan",
        help="load the experiment plan from this JSON file; the file "
        "then governs systems, cases, seeds, backend AND the whole "
        "budget (population/generations/workers/caches) — the "
        "corresponding flags are ignored",
    )
    p_swp.add_argument(
        "--save-plan", help="write the executed plan to this JSON file"
    )
    p_swp.add_argument(
        "--results",
        help="stream one JSONL record per completed run into this file; "
        "re-invoking with the same path resumes, computing only the "
        "missing (system, case, seed) cells",
    )
    _add_executor(p_swp)
    p_swp.add_argument(
        "--isolated-sessions",
        action="store_true",
        help="give every run its own engine session instead of sharing "
        "one per (case, backend) group",
    )
    p_swp.add_argument("--output", help="save the aggregated sweep as JSON")
    _add_obs(p_swp)
    p_swp.set_defaults(func=_cmd_sweep)

    p_exp = sub.add_parser(
        "experiments",
        help="distributed experiment execution and store aggregation",
    )
    exp_sub = p_exp.add_subparsers(dest="experiments_command", required=True)

    p_serve = exp_sub.add_parser(
        "serve-coordinator",
        help="lease a plan's work units to TCP workers (cell-level, "
        "with within-group stealing) and aggregate their results",
    )
    p_serve.add_argument(
        "--plan",
        required=True,
        help="experiment plan JSON (e.g. written by sweep --save-plan); "
        "workers receive it over the wire and need no copy",
    )
    p_serve.add_argument(
        "--results",
        required=True,
        help="coordinator results store; re-serving against the same "
        "path resumes, computing only the missing cells",
    )
    _add_fleet(p_serve)
    p_serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="idle re-ask cadence advertised to workers, seconds",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort if the plan is still incomplete after this many "
        "seconds (default: wait forever — workers may join at any time)",
    )
    p_serve.add_argument(
        "--isolated-sessions",
        action="store_true",
        help="workers give every run its own engine session instead of "
        "sharing one per leased group",
    )
    p_serve.add_argument(
        "--cost-snapshot",
        metavar="PATH",
        help="persist the fleet cost model to this JSON sidecar on "
        "finish and restore it on start, so the next run's first "
        "leases are already sized from measured per-cell rates "
        "(missing or unreadable files mean a cold start, never an "
        "error)",
    )
    _add_obs(p_serve)
    p_serve.set_defaults(func=_cmd_experiments_serve)

    p_wrk = exp_sub.add_parser(
        "worker",
        help="join a coordinator's fleet and execute leased work units",
    )
    p_wrk.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (printed by serve-coordinator)",
    )
    p_wrk.add_argument(
        "--store",
        help="worker-local results store; reusing a path across worker "
        "restarts resumes interrupted groups (default: a fresh "
        "temporary file)",
    )
    p_wrk.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="idle re-ask cadence, seconds (default: what the "
        "coordinator advertises)",
    )
    p_wrk.add_argument(
        "--id", help="stable worker identity (default: hostname-pid)"
    )
    p_wrk.add_argument(
        "--throttle",
        type=float,
        default=None,
        metavar="SECONDS_PER_CELL",
        help="artificially slow this worker down by sleeping this many "
        "seconds per executed cell — a test knob for exercising "
        "capacity-aware scheduling on heterogeneous fleets (default: "
        "$REPRO_WORKER_THROTTLE)",
    )
    p_wrk.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_FLEET_TOKEN"),
        help="shared secret matching the coordinator's --auth-token "
        "(default: $REPRO_FLEET_TOKEN)",
    )
    p_wrk.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="initial retry delay ceiling after a failed coordinator "
        "exchange; doubles per consecutive failure (with jitter) up "
        "to --backoff-cap",
    )
    p_wrk.add_argument(
        "--backoff-cap",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="maximum retry delay ceiling under the exponential "
        "backoff",
    )
    _add_obs(p_wrk)
    p_wrk.set_defaults(func=_cmd_experiments_worker)

    p_drn = exp_sub.add_parser(
        "drain",
        help="gracefully retire one worker: it finishes its leased "
        "unit, uploads its records and exits with nothing requeued "
        "(elastic scale-down)",
    )
    p_drn.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (single-plan or service fleet port)",
    )
    p_drn.add_argument(
        "--worker",
        required=True,
        help="worker identity to retire (the --id it joined with, "
        "default hostname-pid; see 'repro experiments status')",
    )
    p_drn.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_FLEET_TOKEN"),
        help="shared secret matching the coordinator's --auth-token "
        "(default: $REPRO_FLEET_TOKEN)",
    )
    p_drn.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for the coordinator's reply",
    )
    p_drn.set_defaults(func=_cmd_experiments_drain)

    p_st = exp_sub.add_parser(
        "status",
        help="query a running coordinator for live fleet progress and "
        "per-worker utilization (read-only; never delays shutdown)",
    )
    p_st.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (printed by serve-coordinator)",
    )
    p_st.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_FLEET_TOKEN"),
        help="shared secret matching the coordinator's --auth-token "
        "(default: $REPRO_FLEET_TOKEN)",
    )
    p_st.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for the coordinator's reply",
    )
    p_st.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-probe and redraw every SECONDS until the plan "
        "finishes or the coordinator goes away (default: one snapshot)",
    )
    p_st.set_defaults(func=_cmd_experiments_status)

    p_mrg = exp_sub.add_parser(
        "merge-stores",
        help="aggregate several JSONL results stores into one "
        "(first writer wins, sorted output, partial tails compacted)",
    )
    p_mrg.add_argument(
        "--into",
        required=True,
        help="destination store; its existing records take precedence",
    )
    p_mrg.add_argument(
        "stores",
        nargs="+",
        help="source stores, in precedence order",
    )
    p_mrg.set_defaults(func=_cmd_experiments_merge)

    p_svc = sub.add_parser(
        "serve",
        help="run the always-on prediction service: an HTTP gateway "
        "for plan submission/polling/streaming plus a multi-plan "
        "fleet coordinator with cost-weighted fair-share scheduling "
        "across tenants",
    )
    p_svc.add_argument(
        "--spool",
        required=True,
        metavar="DIR",
        help="service state directory: admitted plans, per-plan "
        "results stores and the cost-model snapshot live here, so a "
        "restarted service resumes its queue",
    )
    p_svc.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen address for both ports (0.0.0.0 to accept remote "
        "clients and workers)",
    )
    p_svc.add_argument(
        "--port",
        type=int,
        default=8321,
        help="HTTP gateway port (0 = OS-assigned; the bound address "
        "is printed)",
    )
    p_svc.add_argument(
        "--fleet-port",
        type=int,
        default=0,
        help="worker-facing fleet protocol port (0 = OS-assigned; "
        "point 'repro experiments worker --connect' here)",
    )
    p_svc.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds of worker silence after which its leased unit "
        "is handed to another worker",
    )
    p_svc.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="idle re-ask cadence advertised to workers, seconds",
    )
    p_svc.add_argument(
        "--min-unit-cells",
        type=int,
        default=1,
        help="work-stealing floor per plan (see serve-coordinator)",
    )
    p_svc.add_argument(
        "--target-unit-seconds",
        type=float,
        default=1.0,
        help="per-lease wall-clock target for cost-sized grants",
    )
    p_svc.add_argument(
        "--max-active",
        type=int,
        default=8,
        help="admission bound: plans queued or running at once before "
        "submissions are answered 429 with a Retry-After derived "
        "from the cost model's predicted drain time",
    )
    p_svc.add_argument(
        "--isolated-sessions",
        action="store_true",
        help="workers give every run its own engine session instead "
        "of sharing one per leased group",
    )
    p_svc.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_FLEET_TOKEN"),
        help="shared secret for the fleet port's HMAC handshake "
        "(default: $REPRO_FLEET_TOKEN; unset disables authentication; "
        "the HTTP gateway is unauthenticated — bind it privately)",
    )
    _add_obs(p_svc)
    p_svc.set_defaults(func=_cmd_serve)

    p_obs = sub.add_parser(
        "obs",
        help="observability utilities over collected telemetry files",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_tl = obs_sub.add_parser(
        "timeline",
        help="merge --trace JSONL files into one Chrome trace-event "
        "timeline (open in Perfetto or chrome://tracing); propagated "
        "trace ids and clock offsets place spans on per-worker tracks",
    )
    p_tl.add_argument(
        "traces",
        nargs="+",
        metavar="TRACE_JSONL",
        help="trace files written by --trace (one per process: "
        "coordinator and each worker)",
    )
    p_tl.add_argument(
        "-o",
        "--output",
        required=True,
        help="destination timeline JSON",
    )
    p_tl.add_argument(
        "--trace-id",
        default=None,
        help="keep only spans of this propagated trace id (default: "
        "all events; untagged events are always kept)",
    )
    p_tl.set_defaults(func=_cmd_obs_timeline)

    args = parser.parse_args(argv)
    _setup_obs(args)
    try:
        return args.func(args)
    finally:
        # even a failing command leaves a metrics snapshot and a
        # flushed trace — that is when they are most wanted
        _teardown_obs(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
