"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows without writing a script:

* ``simulate`` — run one fire simulation on a canonical case terrain
  and print burned-area statistics (the fireLib-style use).
* ``run`` — run one prediction system on a case and print the per-step
  table; optionally save the result as JSON.
* ``compare`` — run several systems on the same case and print the E1
  quality-per-step comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.metrics import compare_runs
from repro.analysis.reporting import format_comparison, format_run
from repro.core.scenario import Scenario
from repro.ea.de import DEConfig
from repro.engine import backend_names
from repro.ea.ga import GAConfig
from repro.ea.nsga import NoveltyGAConfig
from repro.firelib.simulator import FireSimulator
from repro.parallel.islands import IslandModelConfig
from repro.systems import (
    ESS,
    ESSIMDE,
    ESSIMEA,
    ESSNS,
    ESSNSIM,
    ESSConfig,
    ESSIMDEConfig,
    ESSIMEAConfig,
    ESSNSConfig,
    ESSNSIMConfig,
)
from repro.workloads.cases import CASE_BUILDERS

__all__ = ["main", "build_system"]

_SYSTEM_NAMES = ("ess", "ess-ns", "essim-ea", "essim-de", "essns-im")


def build_system(
    name: str,
    population: int = 16,
    generations: int = 6,
    n_workers: int = 1,
    tuning: str = "both",
    backend: str = "reference",
    cache_size: int = 0,
    session_cache_size: int = 0,
):
    """Construct a prediction system by CLI name with matched budgets."""
    islands = IslandModelConfig(n_islands=2, migration_interval=2, n_migrants=2)
    half = max(4, population // 2)
    engine_opts = dict(
        n_workers=n_workers,
        backend=backend,
        cache_size=cache_size,
        session_cache_size=session_cache_size,
    )
    if name == "ess":
        return ESS(
            ESSConfig(ga=GAConfig(population_size=population),
                      max_generations=generations),
            **engine_opts,
        )
    if name == "ess-ns":
        return ESSNS(
            ESSNSConfig(
                nsga=NoveltyGAConfig(
                    population_size=population,
                    k_neighbors=max(2, population // 2),
                    best_set_capacity=max(4, (3 * population) // 4),
                ),
                max_generations=generations,
            ),
            **engine_opts,
        )
    if name == "essim-ea":
        return ESSIMEA(
            ESSIMEAConfig(
                ga=GAConfig(population_size=half),
                islands=islands,
                max_generations=generations,
            ),
            **engine_opts,
        )
    if name == "essim-de":
        return ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=half),
                islands=islands,
                max_generations=generations,
                tuning=tuning,
            ),
            **engine_opts,
        )
    if name == "essns-im":
        return ESSNSIM(
            ESSNSIMConfig(
                nsga=NoveltyGAConfig(
                    population_size=half,
                    k_neighbors=max(2, half // 2),
                    best_set_capacity=max(4, (3 * half) // 4),
                ),
                islands=islands,
                max_generations=generations,
            ),
            **engine_opts,
        )
    raise SystemExit(f"unknown system {name!r}; choose from {_SYSTEM_NAMES}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    parser.add_argument("--size", type=int, default=44, help="grid side, cells")
    parser.add_argument("--steps", type=int, default=3, help="prediction steps")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="reference",
        help="simulation-engine backend for fitness evaluation "
        "(pair 'process' with --workers for a real pool size)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="per-step LRU scenario-result cache capacity (0 = off)",
    )
    parser.add_argument(
        "--session-cache-size",
        type=int,
        default=0,
        help="run-scoped cross-step result cache capacity, shared by "
        "all prediction steps of a run (0 = off; replaces --cache-size "
        "when set)",
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=2)
    scenario = Scenario(
        model=args.model,
        wind_speed=args.wind_speed,
        wind_dir=args.wind_dir,
        m1=args.m1,
        m10=args.m1 + 1,
        m100=args.m1 + 2,
        mherb=args.mherb,
        slope=args.slope,
        aspect=args.aspect,
    )
    sim = FireSimulator(fire.terrain)
    result = sim.simulate(
        scenario, [fire.terrain.center()], horizon=args.minutes
    )
    burned = result.burned()
    print(f"terrain: {args.case} {fire.terrain.shape}")
    print(f"scenario: {scenario}")
    print(f"horizon: {args.minutes:g} min")
    print(f"burned cells: {int(burned.sum())} / {fire.terrain.n_cells}")
    print(f"max head-fire rate: {result.ros_max_ftmin:.2f} ft/min")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=args.steps)
    system = build_system(
        args.system,
        args.population,
        args.generations,
        args.workers,
        backend=args.backend,
        cache_size=args.cache_size,
        session_cache_size=args.session_cache_size,
    )
    run = system.run(fire, rng=args.seed)
    print(f"case: {fire.description}")
    print(format_run(run))
    if args.output:
        run.save_json(args.output)
        print(f"saved: {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=args.steps)
    names = args.systems.split(",")
    runs = []
    for name in names:
        system = build_system(
            name.strip(),
            args.population,
            args.generations,
            args.workers,
            backend=args.backend,
            cache_size=args.cache_size,
            session_cache_size=args.session_cache_size,
        )
        runs.append(system.run(fire, rng=args.seed))
    print(f"case: {fire.description}")
    print(format_comparison(compare_runs(runs)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESS-NS wildfire-prediction reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one fire simulation")
    p_sim.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    p_sim.add_argument("--size", type=int, default=60)
    p_sim.add_argument("--minutes", type=float, default=45.0)
    p_sim.add_argument("--model", type=int, default=1)
    p_sim.add_argument("--wind-speed", type=float, default=8.0)
    p_sim.add_argument("--wind-dir", type=float, default=90.0)
    p_sim.add_argument("--m1", type=float, default=6.0)
    p_sim.add_argument("--mherb", type=float, default=60.0)
    p_sim.add_argument("--slope", type=float, default=5.0)
    p_sim.add_argument("--aspect", type=float, default=270.0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_run = sub.add_parser("run", help="run one prediction system")
    p_run.add_argument("system", choices=_SYSTEM_NAMES)
    _add_common(p_run)
    p_run.add_argument("--output", help="save the run as JSON")
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare systems on one case")
    p_cmp.add_argument(
        "--systems",
        default="ess,ess-ns",
        help="comma-separated list from: " + ", ".join(_SYSTEM_NAMES),
    )
    _add_common(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
