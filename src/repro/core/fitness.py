"""The fitness function — Eq. 3 of the paper (Jaccard index).

    fitness(A, B) = |A ∩ B| / |A ∪ B|

where A is the set of *really* burned cells minus the cells already
burned before the simulation started, and B is the set of *simulated*
burned cells minus the same pre-burned subset. "Previously burned cells
are not considered in order to avoid skewed results" (paper §III-B).

The value is 1 for a perfect prediction and 0 for the worst possible
one. When both A and B are empty (the fire did not grow and none was
predicted) the prediction is vacuously perfect and the fitness is
defined as 1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FitnessError

__all__ = ["jaccard_fitness", "jaccard_from_counts", "batch_jaccard"]


def jaccard_from_counts(intersection: int, union: int) -> float:
    """Jaccard index from precomputed counts (1.0 for the empty union)."""
    if union < 0 or intersection < 0 or intersection > union:
        raise FitnessError(
            f"inconsistent counts: intersection={intersection}, union={union}"
        )
    if union == 0:
        return 1.0
    return intersection / union


def jaccard_fitness(
    real_burned: np.ndarray,
    sim_burned: np.ndarray,
    pre_burned: np.ndarray | None = None,
) -> float:
    """Eq. 3 on boolean burned masks.

    Parameters
    ----------
    real_burned:
        Cells burned in reality at the evaluation instant (RFL_i as a
        filled region).
    sim_burned:
        Cells burned in the simulation at the same instant.
    pre_burned:
        Cells already burned before the simulations started
        (RFL_{i−1}); excluded from both sets.
    """
    a = np.asarray(real_burned, dtype=bool)
    b = np.asarray(sim_burned, dtype=bool)
    if a.shape != b.shape:
        raise FitnessError(f"map shapes differ: {a.shape} vs {b.shape}")
    if pre_burned is not None:
        pre = np.asarray(pre_burned, dtype=bool)
        if pre.shape != a.shape:
            raise FitnessError(
                f"pre-burned shape {pre.shape} != map shape {a.shape}"
            )
        keep = ~pre
        a = a & keep
        b = b & keep
    intersection = int(np.count_nonzero(a & b))
    union = int(np.count_nonzero(a | b))
    return jaccard_from_counts(intersection, union)


def batch_jaccard(
    real_burned: np.ndarray,
    sim_burned_stack: np.ndarray,
    pre_burned: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised Eq. 3 for a stack of simulated maps.

    ``sim_burned_stack`` has shape ``(n, H, W)``; returns ``(n,)``
    fitness values. Used by the Statistical Stage and benchmarks to
    score many scenario maps against one reality without a Python loop.
    """
    a = np.asarray(real_burned, dtype=bool)
    stack = np.asarray(sim_burned_stack, dtype=bool)
    if stack.ndim != 3 or stack.shape[1:] != a.shape:
        raise FitnessError(
            f"stack shape {stack.shape} incompatible with map shape {a.shape}"
        )
    if pre_burned is not None:
        pre = np.asarray(pre_burned, dtype=bool)
        if pre.shape != a.shape:
            raise FitnessError(
                f"pre-burned shape {pre.shape} != map shape {a.shape}"
            )
        keep = ~pre
        a = a & keep
        stack = stack & keep  # broadcasts over the leading axis
    inter = np.count_nonzero(stack & a, axis=(1, 2)).astype(np.float64)
    union = np.count_nonzero(stack | a, axis=(1, 2)).astype(np.float64)
    out = np.ones(stack.shape[0], dtype=np.float64)
    nz = union > 0
    out[nz] = inter[nz] / union[nz]
    return out
