"""The evolutionary unit: a genome plus its evaluated scores.

Algorithm 1 manipulates individuals carrying two scores: the *fitness*
(Eq. 3, computed by the Workers) and the *novelty* ρ(x) (Eq. 1, computed
by the Master). Both start unset; stages fill them in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EvolutionError

__all__ = ["Individual", "genomes_matrix", "fitness_vector", "novelty_vector"]


@dataclass
class Individual:
    """One candidate scenario in the evolutionary search.

    Attributes
    ----------
    genome:
        9-float vector in the Table I box (see
        :class:`repro.core.scenario.ParameterSpace`).
    fitness:
        Jaccard fitness in [0, 1], or ``None`` before evaluation.
    novelty:
        Novelty score ρ(x) ≥ 0, or ``None`` before evaluation.
    birth_generation:
        Generation at which the individual was created (0 for the
        initial population); used by analysis only.
    """

    genome: np.ndarray
    fitness: float | None = None
    novelty: float | None = None
    birth_generation: int = 0

    def __post_init__(self) -> None:
        g = np.asarray(self.genome, dtype=np.float64)
        if g.ndim != 1:
            raise EvolutionError(f"genome must be a 1-D vector, got shape {g.shape}")
        self.genome = g

    @property
    def evaluated(self) -> bool:
        """Whether fitness has been computed."""
        return self.fitness is not None

    def copy(self) -> "Individual":
        """Deep copy (genome array included)."""
        return Individual(
            genome=self.genome.copy(),
            fitness=self.fitness,
            novelty=self.novelty,
            birth_generation=self.birth_generation,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        f = "None" if self.fitness is None else f"{self.fitness:.4f}"
        n = "None" if self.novelty is None else f"{self.novelty:.4f}"
        return f"Individual(fitness={f}, novelty={n}, genome={np.round(self.genome, 2)})"


def genomes_matrix(individuals: Sequence[Individual]) -> np.ndarray:
    """Stack genomes into an ``(n, d)`` matrix (empty → ``(0, 0)``)."""
    if not individuals:
        return np.zeros((0, 0))
    return np.stack([ind.genome for ind in individuals])


def fitness_vector(individuals: Iterable[Individual]) -> np.ndarray:
    """Vector of fitness values.

    Raises
    ------
    EvolutionError
        If any individual has not been evaluated yet — callers must run
        the fitness stage first (Algorithm 1 lines 8–10 precede lines
        12–14 for exactly this reason).
    """
    values = []
    for i, ind in enumerate(individuals):
        if ind.fitness is None:
            raise EvolutionError(f"individual #{i} has no fitness; evaluate first")
        values.append(ind.fitness)
    return np.asarray(values, dtype=np.float64)


def novelty_vector(individuals: Iterable[Individual]) -> np.ndarray:
    """Vector of novelty values (requires prior novelty evaluation)."""
    values = []
    for i, ind in enumerate(individuals):
        if ind.novelty is None:
            raise EvolutionError(f"individual #{i} has no novelty; evaluate first")
        values.append(ind.novelty)
    return np.asarray(values, dtype=np.float64)
