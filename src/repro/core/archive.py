"""The archive of novel solutions and the ``bestSet`` of Algorithm 1.

Two accumulators drive the paper's search:

* :class:`NoveltyArchive` — "the search incorporates an archive of novel
  solutions that allows it to keep track of the most novel solutions
  discovered so far, and uses it to compute the novelty score". The
  paper manages it "with replacement based on novelty only, as opposed
  to [Doncieux et al. 2020], which uses a randomized approach" — both
  policies are implemented (the randomized one feeds the E5 ablation).
* :class:`BestSet` — "a collection of high fitness individuals which
  were accumulated during the search"; it is the OS output used by the
  Statistical/Calibration/Prediction stages instead of the final
  population.

Both have a fixed capacity in this first version, matching §III-B ("we
are considering a fixed size archive and solution set"); capacities are
constructor parameters so dynamic-size variants can subclass.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.individual import Individual
from repro.errors import EvolutionError
from repro.rng import ensure_rng

__all__ = ["NoveltyArchive", "ThresholdArchive", "BestSet"]


class NoveltyArchive:
    """Bounded archive of the most novel individuals found so far.

    Parameters
    ----------
    capacity:
        Maximum number of stored individuals (> 0).
    policy:
        ``"novelty"`` (paper default): when full, the archive keeps the
        ``capacity`` most novel individuals among old ∪ new.
        ``"random"``: new candidates replace uniformly-random members
        (the Doncieux et al. 2020 scheme, for the ablation).
    rng:
        Random generator (or seed) used only by the ``"random"`` policy.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "novelty",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if capacity < 1:
            raise EvolutionError(f"archive capacity must be >= 1, got {capacity}")
        if policy not in ("novelty", "random"):
            raise EvolutionError(f"unknown archive policy {policy!r}")
        self._capacity = capacity
        self._policy = policy
        self._rng = ensure_rng(rng)
        self._members: list[Individual] = []

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum size."""
        return self._capacity

    @property
    def policy(self) -> str:
        """Replacement policy name."""
        return self._policy

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._members)

    def members(self) -> list[Individual]:
        """Snapshot of the archived individuals (shared references)."""
        return list(self._members)

    def fitness_values(self) -> np.ndarray:
        """Fitness vector of the archive (for the novelty reference set)."""
        return np.asarray(
            [ind.fitness for ind in self._members], dtype=np.float64
        )

    # ------------------------------------------------------------------
    def update(self, offspring: Sequence[Individual]) -> None:
        """Algorithm 1 line 15: fold new offspring into the archive.

        Candidates must carry both fitness and novelty scores. Stored
        individuals are copies, so later mutation of the population
        cannot corrupt the archive.
        """
        candidates = []
        for ind in offspring:
            if ind.fitness is None or ind.novelty is None:
                raise EvolutionError(
                    "archive candidates need fitness and novelty scores"
                )
            candidates.append(ind.copy())
        if not candidates:
            return

        if self._policy == "novelty":
            pool = self._members + candidates
            pool.sort(key=lambda ind: ind.novelty, reverse=True)  # type: ignore[arg-type, return-value]
            self._members = pool[: self._capacity]
        else:  # random replacement
            for ind in candidates:
                if len(self._members) < self._capacity:
                    self._members.append(ind)
                else:
                    slot = int(self._rng.integers(0, self._capacity))
                    self._members[slot] = ind

    def min_novelty(self) -> float:
        """Lowest novelty currently stored (0.0 when empty)."""
        if not self._members:
            return 0.0
        return min(ind.novelty for ind in self._members)  # type: ignore[arg-type, return-value]


class ThresholdArchive:
    """Novelty-threshold archive with dynamic adjustment (§IV variant).

    Lehman & Stanley's original archive admits an individual only when
    its novelty exceeds a threshold ρ_min, adapting the threshold to
    the admission rate — the "novelty threshold for including solutions
    in the archive as in [15]" the paper lists as future work. This
    gives a *dynamic-size* archive (another §IV item), optionally
    soft-capped.

    Parameters
    ----------
    threshold:
        Initial ρ_min (> 0).
    adjust_every:
        Adaptation window: after this many ``update`` calls the
        threshold is revised (≥ 1).
    raise_factor / lower_factor:
        Multipliers applied when the window saw "many" admissions
        (> ``target_admissions``) or none at all.
    target_admissions:
        Admissions per window above which the threshold rises.
    max_size:
        Optional hard cap; when exceeded the least novel members are
        dropped (``None`` = unbounded, the classic behaviour).

    The interface matches :class:`NoveltyArchive` (``update``,
    ``members``, ``fitness_values``), so it drops into
    :meth:`repro.ea.nsga.NoveltyGA.run` via its ``archive`` parameter.
    """

    def __init__(
        self,
        threshold: float = 0.05,
        adjust_every: int = 5,
        raise_factor: float = 1.2,
        lower_factor: float = 0.8,
        target_admissions: int = 4,
        max_size: int | None = None,
    ) -> None:
        if threshold <= 0:
            raise EvolutionError(f"threshold must be > 0, got {threshold}")
        if adjust_every < 1:
            raise EvolutionError(f"adjust_every must be >= 1, got {adjust_every}")
        if not (raise_factor > 1.0):
            raise EvolutionError(f"raise_factor must be > 1, got {raise_factor}")
        if not (0.0 < lower_factor < 1.0):
            raise EvolutionError(
                f"lower_factor must be in (0, 1), got {lower_factor}"
            )
        if target_admissions < 1:
            raise EvolutionError(
                f"target_admissions must be >= 1, got {target_admissions}"
            )
        if max_size is not None and max_size < 1:
            raise EvolutionError(f"max_size must be >= 1 or None, got {max_size}")
        self.threshold = threshold
        self._adjust_every = adjust_every
        self._raise = raise_factor
        self._lower = lower_factor
        self._target = target_admissions
        self._max_size = max_size
        self._members: list[Individual] = []
        self._updates_since_adjust = 0
        self._admissions_since_adjust = 0
        self.admissions_total = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._members)

    def members(self) -> list[Individual]:
        """Snapshot of the archived individuals."""
        return list(self._members)

    def fitness_values(self) -> np.ndarray:
        """Fitness vector of the archive (novelty reference set)."""
        return np.asarray(
            [ind.fitness for ind in self._members], dtype=np.float64
        )

    # ------------------------------------------------------------------
    def update(self, offspring: Sequence[Individual]) -> None:
        """Admit offspring whose novelty clears the current threshold."""
        admitted = 0
        for ind in offspring:
            if ind.fitness is None or ind.novelty is None:
                raise EvolutionError(
                    "archive candidates need fitness and novelty scores"
                )
            if ind.novelty >= self.threshold:
                self._members.append(ind.copy())
                admitted += 1
        self.admissions_total += admitted
        self._admissions_since_adjust += admitted
        self._updates_since_adjust += 1

        if self._updates_since_adjust >= self._adjust_every:
            if self._admissions_since_adjust > self._target:
                self.threshold *= self._raise
            elif self._admissions_since_adjust == 0:
                self.threshold *= self._lower
            self._updates_since_adjust = 0
            self._admissions_since_adjust = 0

        if self._max_size is not None and len(self._members) > self._max_size:
            self._members.sort(key=lambda i: i.novelty, reverse=True)  # type: ignore[arg-type, return-value]
            del self._members[self._max_size :]


class BestSet:
    """Bounded, fitness-sorted accumulator of the best solutions found.

    This is the OS output of Fig. 3: "a collection of high fitness
    individuals which were accumulated during the search". Identical
    genomes are deduplicated (keeping the better-scored copy) so the set
    spans *different* scenarios — storing clones would defeat its
    uncertainty-reduction purpose (§II-B discusses exactly this failure
    mode for converged populations).
    """

    def __init__(self, capacity: int, dedupe: bool = True) -> None:
        if capacity < 1:
            raise EvolutionError(f"bestSet capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._dedupe = dedupe
        self._members: list[Individual] = []

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum size."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self._members)

    def members(self) -> list[Individual]:
        """Individuals sorted by decreasing fitness."""
        return list(self._members)

    def genomes(self) -> np.ndarray:
        """Genome matrix of the set, shape ``(n, d)``."""
        if not self._members:
            return np.zeros((0, 0))
        return np.stack([ind.genome for ind in self._members])

    def max_fitness(self) -> float:
        """Algorithm 1 line 18: best fitness seen (0.0 when empty)."""
        if not self._members:
            return 0.0
        return float(self._members[0].fitness)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def update(self, candidates: Iterable[Individual]) -> None:
        """Algorithm 1 line 17: merge candidates, keep the fittest.

        Candidates must be fitness-evaluated; stored individuals are
        copies.
        """
        new = []
        for ind in candidates:
            if ind.fitness is None:
                raise EvolutionError("bestSet candidates need a fitness score")
            new.append(ind.copy())
        if not new:
            return
        pool = self._members + new
        pool.sort(key=lambda ind: ind.fitness, reverse=True)  # type: ignore[arg-type, return-value]
        if self._dedupe:
            unique: list[Individual] = []
            for ind in pool:
                if any(np.array_equal(ind.genome, u.genome) for u in unique):
                    continue
                unique.append(ind)
                if len(unique) == self._capacity:
                    break
            self._members = unique
        else:
            self._members = pool[: self._capacity]
