"""The scenario parameter space — Table I of the paper.

A *scenario* is the set of input parameters describing the environmental
conditions and terrain topography used by the fire simulator. The search
space is the 9-dimensional box of Table I; genomes are float vectors in
that box (the ``Model`` coordinate is rounded to an integer on decode).

========== ============================================= ========= =====================================
Parameter  Description                                   Range     Unit
========== ============================================= ========= =====================================
Model      Rothermel fuel model                          1–13      fuel model
WindSpd    Wind speed                                    0–80      miles/hour
WindDir    Wind direction                                0–360     degrees clockwise from North
M1         Dead fuel moisture, 1 h                       1–60      percent
M10        Dead fuel moisture, 10 h                      1–60      percent
M100       Dead fuel moisture, 100 h                     1–60      percent
Mherb      Live herbaceous fuel moisture                 30–300    percent
Slope      Surface slope                                 0–81      degrees
Aspect     Direction the surface faces                   0–360     degrees clockwise from North
========== ============================================= ========= =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ScenarioError
from repro.rng import ensure_rng

__all__ = ["ParamSpec", "TABLE_I_SPECS", "ParameterSpace", "Scenario"]


@dataclass(frozen=True)
class ParamSpec:
    """Specification of one scenario parameter (a Table I row)."""

    name: str
    description: str
    low: float
    high: float
    unit: str
    integer: bool = False
    circular: bool = False  # wraps modulo the range (compass angles)

    def __post_init__(self) -> None:
        if not (self.low < self.high):
            raise ScenarioError(
                f"parameter {self.name}: low {self.low} must be < high {self.high}"
            )

    @property
    def span(self) -> float:
        """Width of the valid range."""
        return self.high - self.low

    def clip(self, values: np.ndarray | float) -> np.ndarray | float:
        """Project values into the valid range.

        Circular parameters wrap modulo the span; others clamp to the
        box; integer parameters round half-up.
        """
        v = np.asarray(values, dtype=np.float64)
        if self.circular:
            out = self.low + np.mod(v - self.low, self.span)
            # float mod can round a tiny negative up to exactly `span`,
            # producing the excluded boundary; wrap it back to `low` so
            # clipping is idempotent (0° and 360° are the same angle).
            out = np.where(out >= self.high, self.low, out)
        else:
            out = np.clip(v, self.low, self.high)
        if self.integer:
            out = np.clip(np.rint(out), np.ceil(self.low), np.floor(self.high))
        return out if out.ndim else float(out)

    def contains(self, values: np.ndarray | float) -> np.ndarray | bool:
        """Whether values lie in the valid range (integers need not be exact)."""
        v = np.asarray(values, dtype=np.float64)
        ok = (v >= self.low) & (v <= self.high)
        return ok if ok.ndim else bool(ok)


#: The exact Table I rows, in paper order.
TABLE_I_SPECS: tuple[ParamSpec, ...] = (
    ParamSpec("Model", "Rothermel Fuel Model", 1, 13, "fuel model", integer=True),
    ParamSpec("WindSpd", "Wind speed", 0, 80, "miles/hour"),
    ParamSpec(
        "WindDir",
        "Wind direction",
        0,
        360,
        "degrees clockwise from North",
        circular=True,
    ),
    ParamSpec("M1", "Dead Fuel Moisture in 1 hour since start of fire", 1, 60, "percent"),
    ParamSpec("M10", "Dead Fuel Moisture in 10 h", 1, 60, "percent"),
    ParamSpec("M100", "Dead Fuel Moisture in 100 h", 1, 60, "percent"),
    ParamSpec("Mherb", "Live herbaceous fuel moisture", 30, 300, "percent"),
    ParamSpec("Slope", "Surface slope", 0, 81, "degrees"),
    ParamSpec(
        "Aspect",
        "Direction of the surface faces",
        0,
        360,
        "degrees clockwise from north",
        circular=True,
    ),
)

#: Genome coordinate order (matches Table I).
_FIELD_ORDER = (
    "model",
    "wind_speed",
    "wind_dir",
    "m1",
    "m10",
    "m100",
    "mherb",
    "slope",
    "aspect",
)


@dataclass(frozen=True)
class Scenario:
    """A decoded scenario — one "parameter vector PV" of Figs. 1 and 3.

    Field units are the Table I units; this class satisfies the
    simulator's :class:`repro.firelib.simulator.ScenarioInputs` protocol.
    """

    model: int
    wind_speed: float
    wind_dir: float
    m1: float
    m10: float
    m100: float
    mherb: float
    slope: float
    aspect: float

    def to_genome(self) -> np.ndarray:
        """Encode as a 9-float genome (Table I order)."""
        return np.array([getattr(self, f) for f in _FIELD_ORDER], dtype=np.float64)

    def replace(self, **changes: float) -> "Scenario":
        """Copy with some fields changed."""
        values = {f: getattr(self, f) for f in _FIELD_ORDER}
        values.update(changes)
        return Scenario(**values)


class ParameterSpace:
    """The 9-D search box of Table I: sampling, clipping, encode/decode.

    A custom tuple of :class:`ParamSpec` may be supplied (used by the
    deceptive-landscape workload to shrink the space); the default is the
    exact Table I space.
    """

    def __init__(self, specs: Sequence[ParamSpec] = TABLE_I_SPECS) -> None:
        if len(specs) != len(_FIELD_ORDER):
            raise ScenarioError(
                f"parameter space needs {len(_FIELD_ORDER)} specs, got {len(specs)}"
            )
        self._specs = tuple(specs)
        self._low = np.array([s.low for s in self._specs])
        self._high = np.array([s.high for s in self._specs])

    # ------------------------------------------------------------------
    @property
    def specs(self) -> tuple[ParamSpec, ...]:
        """The per-parameter specifications."""
        return self._specs

    @property
    def dimension(self) -> int:
        """Number of parameters (9 for Table I)."""
        return len(self._specs)

    @property
    def lower_bounds(self) -> np.ndarray:
        """Vector of lower bounds."""
        return self._low.copy()

    @property
    def upper_bounds(self) -> np.ndarray:
        """Vector of upper bounds."""
        return self._high.copy()

    def names(self) -> tuple[str, ...]:
        """Parameter names in genome order."""
        return tuple(s.name for s in self._specs)

    # ------------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw ``n`` uniform genomes, shape ``(n, dimension)``."""
        if n < 0:
            raise ScenarioError(f"cannot sample a negative population: {n}")
        gen = ensure_rng(rng)
        u = gen.random((n, self.dimension))
        genomes = self._low + u * (self._high - self._low)
        return self.clip(genomes)

    def clip(self, genomes: np.ndarray) -> np.ndarray:
        """Project genomes into the box (wrap circular, round integer)."""
        g = np.atleast_2d(np.asarray(genomes, dtype=np.float64)).copy()
        if g.shape[-1] != self.dimension:
            raise ScenarioError(
                f"genome dimension {g.shape[-1]} != space dimension {self.dimension}"
            )
        for j, spec in enumerate(self._specs):
            g[:, j] = spec.clip(g[:, j])
        return g if np.asarray(genomes).ndim > 1 else g[0]

    def contains(self, genome: np.ndarray) -> bool:
        """Whether every coordinate lies in its valid range."""
        g = np.asarray(genome, dtype=np.float64)
        if g.shape != (self.dimension,):
            raise ScenarioError(
                f"genome shape {g.shape} != ({self.dimension},)"
            )
        return all(bool(spec.contains(g[j])) for j, spec in enumerate(self._specs))

    def validate(self, genome: np.ndarray) -> None:
        """Raise :class:`ScenarioError` describing any out-of-range coordinate."""
        g = np.asarray(genome, dtype=np.float64)
        if g.shape != (self.dimension,):
            raise ScenarioError(f"genome shape {g.shape} != ({self.dimension},)")
        problems = [
            f"{spec.name}={g[j]} outside [{spec.low}, {spec.high}] {spec.unit}"
            for j, spec in enumerate(self._specs)
            if not spec.contains(g[j])
        ]
        if problems:
            raise ScenarioError("invalid genome: " + "; ".join(problems))

    # ------------------------------------------------------------------
    def decode(self, genome: np.ndarray) -> Scenario:
        """Genome → :class:`Scenario` (rounds ``Model`` to an integer)."""
        g = self.clip(np.asarray(genome, dtype=np.float64))
        values = dict(zip(_FIELD_ORDER, (float(x) for x in g)))
        values["model"] = int(round(values["model"]))
        return Scenario(**values)

    def decode_many(self, genomes: np.ndarray) -> list[Scenario]:
        """Decode a ``(n, dimension)`` matrix of genomes."""
        return [self.decode(row) for row in np.atleast_2d(genomes)]

    def encode(self, scenario: Scenario) -> np.ndarray:
        """Scenario → clipped genome."""
        return self.clip(scenario.to_genome())

    # ------------------------------------------------------------------
    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Normalised genotypic distance in [0, 1] between two genomes.

        Each coordinate contributes its absolute difference divided by
        the parameter span; circular parameters use wrap-around
        distance. Used by the diversity analysis (not by the novelty
        score, which is behavioural — Eq. 2).
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        total = 0.0
        for j, spec in enumerate(self._specs):
            d = abs(a[j] - b[j])
            if spec.circular:
                d = min(d, spec.span - d)
            total += d / spec.span
        return total / self.dimension

    def pairwise_distances(self, genomes: np.ndarray) -> np.ndarray:
        """All-pairs normalised genotypic distances, shape ``(n, n)``."""
        g = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        n = g.shape[0]
        diff = np.abs(g[:, None, :] - g[None, :, :])
        for j, spec in enumerate(self._specs):
            if spec.circular:
                diff[:, :, j] = np.minimum(diff[:, :, j], spec.span - diff[:, :, j])
            diff[:, :, j] /= spec.span
        out = diff.mean(axis=2)
        np.fill_diagonal(out, 0.0)
        return out if n > 1 else np.zeros((n, n))
