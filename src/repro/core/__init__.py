"""The paper's primary contribution: scenarios, fitness, novelty, archives.

* :mod:`~repro.core.scenario` — the Table I parameter space and the
  :class:`Scenario` value object (the "parameter vectors PV" of Figs. 1/3).
* :mod:`~repro.core.individual` — the evolutionary unit: a genome over
  the parameter space plus its fitness and novelty scores.
* :mod:`~repro.core.fitness` — the Jaccard-index fitness (Eq. 3).
* :mod:`~repro.core.novelty` — the novelty score ρ(x) (Eq. 1) with the
  fitness-difference behaviour distance (Eq. 2).
* :mod:`~repro.core.archive` — the archive of novel solutions and the
  ``bestSet`` accumulator of Algorithm 1.
"""

from repro.core.scenario import ParameterSpace, Scenario, TABLE_I_SPECS
from repro.core.individual import Individual, genomes_matrix, fitness_vector
from repro.core.fitness import jaccard_fitness, jaccard_from_counts
from repro.core.novelty import behaviour_distance_matrix, novelty_scores
from repro.core.archive import BestSet, NoveltyArchive, ThresholdArchive

__all__ = [
    "ParameterSpace",
    "Scenario",
    "TABLE_I_SPECS",
    "Individual",
    "genomes_matrix",
    "fitness_vector",
    "jaccard_fitness",
    "jaccard_from_counts",
    "behaviour_distance_matrix",
    "novelty_scores",
    "BestSet",
    "NoveltyArchive",
    "ThresholdArchive",
]
