"""Novelty score ρ(x) — Eqs. 1 and 2 of the paper.

Eq. 1 (Lehman & Stanley 2011): the novelty of an individual x is the
average behaviour distance to its k nearest neighbours within the
reference set (current population ∪ offspring ∪ archive):

    ρ(x) = (1/k) Σ_{i<k} dist(x, µ_i)

Eq. 2 defines the behaviour distance for this domain as the difference
between fitness values:

    dist(x, µ) = fitness(x) − fitness(µ)

As written Eq. 2 is *signed*; nearest-neighbour selection needs a
non-negative dissimilarity ("takes the k nearest neighbors, i.e. those
individuals for which the smallest values of dist are obtained"), so the
default here is the standard reading ``|Δ fitness|``. The signed variant
is available via ``signed=True`` for completeness — with it, ρ can be
negative and the ordering degenerates, which is measurable in the E5
ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoveltyError

__all__ = ["behaviour_distance_matrix", "novelty_scores", "knn_novelty"]


def behaviour_distance_matrix(
    candidate_fitness: np.ndarray,
    reference_fitness: np.ndarray,
    signed: bool = False,
) -> np.ndarray:
    """Pairwise Eq. 2 distances, shape ``(n_candidates, n_reference)``."""
    cand = np.asarray(candidate_fitness, dtype=np.float64).reshape(-1)
    ref = np.asarray(reference_fitness, dtype=np.float64).reshape(-1)
    diff = cand[:, None] - ref[None, :]
    return diff if signed else np.abs(diff)


def knn_novelty(distances: np.ndarray, k: int) -> np.ndarray:
    """Average of the k smallest entries per row of a distance matrix.

    ``k`` is clipped to the row length; rows must be non-empty.
    """
    d = np.asarray(distances, dtype=np.float64)
    if d.ndim != 2 or d.shape[1] == 0:
        raise NoveltyError(f"distance matrix must be (n, m>0), got shape {d.shape}")
    if k < 1:
        raise NoveltyError(f"k must be >= 1, got {k}")
    k_eff = min(k, d.shape[1])
    if k_eff == d.shape[1]:
        nearest = d
    else:
        # argpartition: O(m) per row instead of a full sort
        nearest = np.partition(d, k_eff - 1, axis=1)[:, :k_eff]
    return nearest.mean(axis=1)


def novelty_scores(
    candidate_fitness: np.ndarray,
    reference_fitness: np.ndarray,
    k: int,
    exclude_self: bool = True,
    signed: bool = False,
) -> np.ndarray:
    """Eq. 1 novelty for each candidate against a reference set.

    Parameters
    ----------
    candidate_fitness:
        Fitness values of the individuals being scored (Algorithm 1
        scores ``population ∪ offspring``).
    reference_fitness:
        Fitness values of the reference set ``noveltySet = population ∪
        offspring ∪ archive`` (Algorithm 1 line 11). Candidates are
        normally *members* of this set.
    k:
        Number of nearest neighbours (Algorithm 1 input ``k``); clipped
        to the usable reference size. Using the whole set is the
        "entire population" variant the paper cites [14], [28].
    exclude_self:
        When candidates belong to the reference set each has one exact
        zero-distance match (itself); excluding it follows Lehman &
        Stanley. With the fitness-difference behaviour (Eq. 2) any
        *other* individual at identical fitness still contributes zero,
        which is semantically right: equal behaviour = no novelty.
    signed:
        Use the literal signed Eq. 2 (see module docstring).

    Returns
    -------
    np.ndarray
        ρ(x) per candidate, non-negative unless ``signed=True``.
    """
    cand = np.asarray(candidate_fitness, dtype=np.float64).reshape(-1)
    ref = np.asarray(reference_fitness, dtype=np.float64).reshape(-1)
    if ref.size == 0:
        raise NoveltyError("reference set is empty; novelty is undefined")
    d = behaviour_distance_matrix(cand, ref, signed=signed)
    if exclude_self:
        if ref.size == 1:
            # Only the individual itself to compare against: define ρ=0
            # (no other behaviour exists, hence nothing is novel).
            return np.zeros(cand.size, dtype=np.float64)
        # Remove one zero-distance occurrence per row (the candidate
        # itself). With signed distances "self" is still the entry at
        # absolute distance zero.
        key = np.abs(d) if signed else d
        self_col = np.argmin(key, axis=1)
        rows = np.arange(d.shape[0])
        mask = np.ones_like(d, dtype=bool)
        mask[rows, self_col] = False
        d = d[mask].reshape(d.shape[0], d.shape[1] - 1)
    return knn_novelty(d, k)
