"""Seed/case sweeps: run systems repeatedly and aggregate statistics.

The lineage papers report means over repeated runs; this module is the
aggregation layer for that: one :class:`SweepCell` per (system, case)
pair, mean ± std over seeds, JSON archival. Execution is delegated to
the experiment layer — :func:`run_sweep` builds the grid and hands it
to an :class:`~repro.experiments.runner.ExperimentRunner`, which shares
one :class:`~repro.engine.EngineSession` per (case, engine-config)
group and can stream records into a resumable
:class:`~repro.experiments.store.ResultsStore`. A
:class:`SweepResult` can equally be rebuilt from such a store
(:meth:`SweepResult.from_store`) without re-running anything.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ReproError
from repro.systems.base import PredictionSystem
from repro.workloads.synthetic import ReferenceFire

__all__ = ["SweepCell", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """Aggregated outcome of one (system, case) pair over seeds."""

    system: str
    case: str
    qualities: tuple[float, ...]
    evaluations: int
    seconds: float

    @property
    def mean(self) -> float:
        """Mean of the per-seed mean qualities."""
        return float(np.mean(self.qualities))

    @property
    def std(self) -> float:
        """Standard deviation over seeds (0 for a single seed)."""
        return float(np.std(self.qualities))


@dataclass
class SweepResult:
    """All cells of a sweep, with table/JSON export."""

    cells: list[SweepCell] = field(default_factory=list)

    def cell(self, system: str, case: str) -> SweepCell:
        """Look up one (system, case) cell."""
        for c in self.cells:
            if c.system == system and c.case == case:
                return c
        raise ReproError(f"no sweep cell for ({system!r}, {case!r})")

    def systems(self) -> list[str]:
        """Distinct system names, in first-seen order."""
        seen: list[str] = []
        for c in self.cells:
            if c.system not in seen:
                seen.append(c.system)
        return seen

    def cases(self) -> list[str]:
        """Distinct case names, in first-seen order."""
        seen: list[str] = []
        for c in self.cells:
            if c.case not in seen:
                seen.append(c.case)
        return seen

    def table_rows(self) -> list[list]:
        """Rows ``[system, case, mean±std, evals, seconds]`` for reporting."""
        return [
            [
                c.system,
                c.case,
                f"{c.mean:.4f} ± {c.std:.4f}",
                c.evaluations,
                round(c.seconds, 2),
            ]
            for c in self.cells
        ]

    def winner(self, case: str) -> str:
        """System with the best mean quality on ``case``.

        Cells whose mean is NaN (no valid prediction quality) never
        win — ``max`` over raw floats would keep a NaN candidate, since
        every comparison against NaN is false — and a case where *no*
        cell has a valid mean has no winner at all (raises).
        """
        candidates = [
            c for c in self.cells if c.case == case and not np.isnan(c.mean)
        ]
        if not candidates:
            if any(c.case == case for c in self.cells):
                raise ReproError(
                    f"no cell for case {case!r} has a valid mean quality"
                )
            raise ReproError(f"no cells for case {case!r}")
        return max(candidates, key=lambda c: c.mean).system

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation.

        Cells are emitted sorted by ``(system, case)`` so the payload —
        and everything derived from a round-trip, like
        :meth:`systems`/:meth:`cases` first-seen order — is identical
        across Python versions and construction orders.
        """
        return {
            "cells": [
                {
                    "system": c.system,
                    "case": c.case,
                    "qualities": list(c.qualities),
                    "evaluations": c.evaluations,
                    "seconds": c.seconds,
                }
                for c in sorted(self.cells, key=lambda c: (c.system, c.case))
            ]
        }

    @classmethod
    def from_records(
        cls,
        records: Sequence[dict],
        systems: Sequence[str] | None = None,
        cases: Sequence[str] | None = None,
    ) -> "SweepResult":
        """Aggregate experiment-layer result records into sweep cells.

        ``records`` are :class:`~repro.experiments.store.ResultsStore`
        payloads (one per completed run). Cell order follows
        ``systems`` × ``cases`` when given, first-seen record order
        otherwise; per-cell quality order follows record order, so a
        resumed store reproduces the original cell contents. Cell
        seconds sum the runs' stage timings (``run_seconds``, the
        pre-experiment-layer sweep metric), falling back to runner
        wall-clock for hand-made records.

        When one system's records span several engine backends (a
        multi-backend plan), that system keeps one cell per backend —
        its label is decorated as ``system[backend]`` so backends are
        never silently merged into one mean. Systems pinned to a
        single backend keep their plain labels.
        """
        from repro.experiments.store import (
            backends_by_system,
            record_key,
            system_label,
        )

        # concatenated or racing stores can hold one key twice; keep the
        # last record per key so duplicates never double-count a seed
        records = list(
            {record_key(r): r for r in records}.values()
        )
        backends_of = backends_by_system(records)

        def decorated(system: str) -> bool:
            return len(backends_of.get(system, {})) > 1

        grouped: dict[tuple[str, str], dict] = {}
        for record in records:
            key = (system_label(record, backends_of), str(record["case"]))
            cell = grouped.setdefault(
                key,
                {"qualities": [], "evaluations": 0, "seconds": 0.0,
                 "config": None},
            )
            # records carry the runner's config digest; one cell must
            # never average runs recorded under different budgets or
            # case shapes (disjoint seeds slip past the store's
            # per-key resume check)
            config = record.get("config")
            if config is not None:
                if cell["config"] is None:
                    cell["config"] = config
                elif cell["config"] != config:
                    raise ReproError(
                        f"records for ({key[0]!r}, {key[1]!r}) mix "
                        "different configurations (budget or case shape "
                        "changed between recordings); aggregate them "
                        "separately instead of into one cell"
                    )
            quality = record.get("quality")
            cell["qualities"].append(
                float("nan") if quality is None else float(quality)
            )
            cell["evaluations"] += int(record.get("evaluations", 0))
            cell["seconds"] += float(
                record.get("run_seconds", record.get("seconds", 0.0))
            )
        if systems is None:
            systems = list(dict.fromkeys(k[0] for k in grouped))
        else:
            systems = [
                name
                for system in systems
                for name in (
                    [f"{system}[{b}]" for b in backends_of[system]]
                    if decorated(system)
                    else [system]
                )
            ]
        if cases is None:
            cases = list(dict.fromkeys(k[1] for k in grouped))
        result = cls()
        for system in systems:
            for case in cases:
                cell = grouped.get((system, case))
                if cell is None:
                    continue
                result.cells.append(
                    SweepCell(
                        system=system,
                        case=case,
                        qualities=tuple(cell["qualities"]),
                        evaluations=cell["evaluations"],
                        seconds=cell["seconds"],
                    )
                )
        return result

    @classmethod
    def from_store(
        cls,
        store,
        systems: Sequence[str] | None = None,
        cases: Sequence[str] | None = None,
    ) -> "SweepResult":
        """Rebuild a sweep from a streaming results store, no re-runs."""
        return cls.from_records(store.records(), systems=systems, cases=cases)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        try:
            cells = [
                SweepCell(
                    system=str(c["system"]),
                    case=str(c["case"]),
                    qualities=tuple(float(q) for q in c["qualities"]),
                    evaluations=int(c["evaluations"]),
                    seconds=float(c["seconds"]),
                )
                for c in data["cells"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed sweep payload: {exc}") from exc
        return cls(cells=cells)

    def save_json(self, path: str | os.PathLike) -> None:
        """Write the sweep to ``path`` as JSON (sorted keys, byte-stable)."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @classmethod
    def load_json(cls, path: str | os.PathLike) -> "SweepResult":
        """Read a sweep previously written by :meth:`save_json`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def run_sweep(
    system_factories: dict[str, Callable[[], PredictionSystem]],
    cases: dict[str, ReferenceFire],
    seeds: Sequence[int],
    seed_offset: int = 0,
    store=None,
    share_sessions: bool = True,
) -> SweepResult:
    """Run every (system, case) pair over all seeds.

    Execution is delegated to the experiment layer's
    :class:`~repro.experiments.runner.ExperimentRunner`: systems with
    identical engine configuration share one
    :class:`~repro.engine.EngineSession` per case, so cross-system
    repeats of the same step context hit the shared session cache.

    Parameters
    ----------
    system_factories:
        Label → zero-arg constructor. A fresh system instance is built
        per run so no state leaks between repetitions.
    cases:
        Label → reference fire (pre-built so every system sees the
        identical ground truth).
    seeds:
        The RNG seeds; each run uses ``seed_offset + seed``.
    store:
        Optional :class:`~repro.experiments.store.ResultsStore`; when
        given, completed runs stream into it and re-invoking the same
        sweep resumes, computing only the missing cells.
    share_sessions:
        Share one engine session per (case, engine-config) group
        (default); pass ``False`` for fully isolated per-run sessions.

    Returns
    -------
    SweepResult
        One cell per (system, case), aggregating the per-seed mean
        prediction qualities and total cost.
    """
    # imported here: analysis aggregates what experiments execute, and
    # the experiment layer imports analysis-free modules only
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(store=store, share_sessions=share_sessions)
    result = runner.run_grid(
        system_factories, cases, seeds, seed_offset=seed_offset
    )
    return SweepResult.from_records(
        result.records,
        systems=list(system_factories),
        cases=list(cases),
    )
