"""Seed/case sweeps: run systems repeatedly and aggregate statistics.

The lineage papers report means over repeated runs; this module is the
harness for that: run every (system, case) pair over a set of seeds,
collect per-run mean qualities, and aggregate to mean ± std. Results
serialise to JSON so long sweeps can be archived.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ReproError
from repro.systems.base import PredictionSystem
from repro.workloads.synthetic import ReferenceFire

__all__ = ["SweepCell", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """Aggregated outcome of one (system, case) pair over seeds."""

    system: str
    case: str
    qualities: tuple[float, ...]
    evaluations: int
    seconds: float

    @property
    def mean(self) -> float:
        """Mean of the per-seed mean qualities."""
        return float(np.mean(self.qualities))

    @property
    def std(self) -> float:
        """Standard deviation over seeds (0 for a single seed)."""
        return float(np.std(self.qualities))


@dataclass
class SweepResult:
    """All cells of a sweep, with table/JSON export."""

    cells: list[SweepCell] = field(default_factory=list)

    def cell(self, system: str, case: str) -> SweepCell:
        """Look up one (system, case) cell."""
        for c in self.cells:
            if c.system == system and c.case == case:
                return c
        raise ReproError(f"no sweep cell for ({system!r}, {case!r})")

    def systems(self) -> list[str]:
        """Distinct system names, in first-seen order."""
        seen: list[str] = []
        for c in self.cells:
            if c.system not in seen:
                seen.append(c.system)
        return seen

    def cases(self) -> list[str]:
        """Distinct case names, in first-seen order."""
        seen: list[str] = []
        for c in self.cells:
            if c.case not in seen:
                seen.append(c.case)
        return seen

    def table_rows(self) -> list[list]:
        """Rows ``[system, case, mean±std, evals, seconds]`` for reporting."""
        return [
            [
                c.system,
                c.case,
                f"{c.mean:.4f} ± {c.std:.4f}",
                c.evaluations,
                round(c.seconds, 2),
            ]
            for c in self.cells
        ]

    def winner(self, case: str) -> str:
        """System with the best mean quality on ``case``."""
        candidates = [c for c in self.cells if c.case == case]
        if not candidates:
            raise ReproError(f"no cells for case {case!r}")
        return max(candidates, key=lambda c: c.mean).system

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "cells": [
                {
                    "system": c.system,
                    "case": c.case,
                    "qualities": list(c.qualities),
                    "evaluations": c.evaluations,
                    "seconds": c.seconds,
                }
                for c in self.cells
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        try:
            cells = [
                SweepCell(
                    system=str(c["system"]),
                    case=str(c["case"]),
                    qualities=tuple(float(q) for q in c["qualities"]),
                    evaluations=int(c["evaluations"]),
                    seconds=float(c["seconds"]),
                )
                for c in data["cells"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed sweep payload: {exc}") from exc
        return cls(cells=cells)

    def save_json(self, path: str | os.PathLike) -> None:
        """Write the sweep to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load_json(cls, path: str | os.PathLike) -> "SweepResult":
        """Read a sweep previously written by :meth:`save_json`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def run_sweep(
    system_factories: dict[str, Callable[[], PredictionSystem]],
    cases: dict[str, ReferenceFire],
    seeds: Sequence[int],
    seed_offset: int = 0,
) -> SweepResult:
    """Run every (system, case) pair over all seeds.

    Parameters
    ----------
    system_factories:
        Label → zero-arg constructor. A fresh system instance is built
        per run so no state leaks between repetitions.
    cases:
        Label → reference fire (pre-built so every system sees the
        identical ground truth).
    seeds:
        The RNG seeds; each run uses ``seed_offset + seed``.

    Returns
    -------
    SweepResult
        One cell per (system, case), aggregating the per-seed mean
        prediction qualities and total cost.
    """
    if not system_factories:
        raise ReproError("need at least one system")
    if not cases:
        raise ReproError("need at least one case")
    if not seeds:
        raise ReproError("need at least one seed")
    result = SweepResult()
    for sys_label, factory in system_factories.items():
        for case_label, fire in cases.items():
            qualities: list[float] = []
            evaluations = 0
            seconds = 0.0
            for seed in seeds:
                run = factory().run(fire, rng=seed_offset + seed)
                qualities.append(run.mean_quality())
                evaluations += run.total_evaluations()
                seconds += run.total_time()
            result.cells.append(
                SweepCell(
                    system=sys_label,
                    case=case_label,
                    qualities=tuple(qualities),
                    evaluations=evaluations,
                    seconds=seconds,
                )
            )
    return result
