"""Analysis utilities: diversity metrics, run comparisons, reporting.

* :mod:`~repro.analysis.diversity` — genotypic and behavioural
  diversity of populations over generations (experiment E2: the
  premature-convergence story of §II-B).
* :mod:`~repro.analysis.metrics` — cross-system comparisons: quality
  per step, response times, speedup tables (experiments E1/E3).
* :mod:`~repro.analysis.reporting` — plain-text/markdown tables for
  examples, benchmarks and EXPERIMENTS.md.
"""

from repro.analysis.diversity import (
    genotypic_diversity,
    behavioural_diversity,
    diversity_series,
)
from repro.analysis.metrics import (
    QualityComparison,
    compare_runs,
    speedup_table,
)
from repro.analysis.reporting import format_table, format_run, format_comparison
from repro.analysis.sweeps import SweepCell, SweepResult, run_sweep

__all__ = [
    "genotypic_diversity",
    "behavioural_diversity",
    "diversity_series",
    "QualityComparison",
    "compare_runs",
    "speedup_table",
    "format_table",
    "format_run",
    "format_comparison",
    "SweepCell",
    "SweepResult",
    "run_sweep",
]
