"""Population diversity measures (experiment E2).

§II-B's critique of the fitness-guided systems is a diversity story:
"Evolutionary metaheuristics tend to converge to a population of similar
genotypes ... which limits the contribution of these solutions to
uncertainty reduction and defeats its purpose." These measures quantify
that collapse and NS's resistance to it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.individual import Individual, fitness_vector, genomes_matrix
from repro.core.scenario import ParameterSpace
from repro.ea.history import EvolutionHistory
from repro.errors import ReproError

__all__ = ["genotypic_diversity", "behavioural_diversity", "diversity_series"]


def genotypic_diversity(
    population: Sequence[Individual] | np.ndarray,
    space: ParameterSpace,
) -> float:
    """Mean pairwise normalised genome distance of a population.

    0 = all clones; larger = more spread. Uses the per-parameter
    normalised (and circular-aware) distance of
    :meth:`ParameterSpace.pairwise_distances`.
    """
    if isinstance(population, np.ndarray):
        genomes = np.atleast_2d(np.asarray(population, dtype=np.float64))
        if genomes.size == 0:
            raise ReproError("cannot measure diversity of an empty population")
    else:
        members = list(population)
        if not members:
            raise ReproError("cannot measure diversity of an empty population")
        if isinstance(members[0], Individual):
            genomes = genomes_matrix(members)
        else:
            genomes = np.atleast_2d(np.asarray(members, dtype=np.float64))
    n = genomes.shape[0]
    if n == 1:
        return 0.0
    d = space.pairwise_distances(genomes)
    return float(d.sum() / (n * (n - 1)))


def behavioural_diversity(population: Sequence[Individual]) -> float:
    """Mean pairwise |Δ fitness| — diversity in the Eq. 2 behaviour space.

    This is the quantity NS directly sustains: by Eq. 2 two individuals
    are behaviourally identical iff their fitness coincides.
    """
    fit = fitness_vector(list(population))
    n = fit.size
    if n == 1:
        return 0.0
    diff = np.abs(fit[:, None] - fit[None, :])
    return float(diff.sum() / (n * (n - 1)))


def diversity_series(history: EvolutionHistory) -> dict[str, np.ndarray]:
    """Extract the E2 time series from an evolution history.

    Returns the per-generation arrays keyed ``"generation"``,
    ``"genotypic_diversity"``, ``"fitness_iqr"`` and ``"max_fitness"`` —
    the exact signals the ESSIM-DE IQR tuning monitors.
    """
    return {
        "generation": history.series("generation"),
        "genotypic_diversity": history.series("genotypic_diversity"),
        "fitness_iqr": history.series("fitness_iqr"),
        "max_fitness": history.series("max_fitness"),
    }
