"""Plain-text / markdown tables for examples, benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.analysis.metrics import QualityComparison
from repro.systems.results import RunResult

__all__ = [
    "format_table",
    "format_run",
    "format_comparison",
    "format_engine_totals",
    "format_session_totals",
    "format_experiment",
    "format_sweep",
]


def _cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if np.isnan(value):
            return "—"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    markdown: bool = False,
) -> str:
    """Render an aligned text table (optionally GitHub-markdown)."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = " | " if markdown else "  "
    edge = "| " if markdown else ""
    lines = [edge + sep.join(h.ljust(w) for h, w in zip(headers, widths)) + (" |" if markdown else "")]
    if markdown:
        lines.append("| " + " | ".join("-" * w for w in widths) + " |")
    else:
        lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            edge + sep.join(v.ljust(w) for v, w in zip(row, widths)) + (" |" if markdown else "")
        )
    return "\n".join(lines)


def format_engine_totals(run: RunResult) -> str:
    """One-line engine summary: backend, simulations saved, cache rate.

    Empty string when the run carries no engine accounting (results
    recorded before the engine subsystem landed).
    """
    totals = run.engine_totals()
    if not totals:
        return ""
    cache = totals["cache"]
    lookups = cache["hits"] + cache["misses"]
    line = (
        f"engine: backend={totals['backend']} workers={totals['n_workers']} "
        f"evaluations={totals['evaluations']} simulations={totals['simulations']}"
    )
    if totals.get("map_simulations"):
        line += f" map-sims={totals['map_simulations']}"
    if lookups:
        rate = cache["hits"] / lookups
        line += (
            f" cache-hits={cache['hits']}/{lookups} ({rate:.1%})"
            f" evictions={cache['evictions']}"
        )
    return line


def format_session_totals(run: RunResult) -> str:
    """One-line run-scoped session summary: pool reuse, cross-step cache.

    Empty string when the run carries no session accounting (results
    recorded before the engine-session subsystem landed).
    """
    session = run.session
    if not session:
        return ""
    line = (
        f"session: steps={session.get('steps', 0)} "
        f"pool-reuses={session.get('pool_reuses', 0)}"
    )
    cache = session.get("cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    if lookups:
        rate = cache.get("hits", 0) / lookups
        line += (
            f" contexts={session.get('contexts', 0)}"
            f" cache-hits={cache.get('hits', 0)}/{lookups} ({rate:.1%})"
            f" cross-step-hits={session.get('cross_step_hits', 0)}"
            f" evictions={cache.get('evictions', 0)}"
        )
        if session.get("cross_system_hits"):
            line += f" cross-system-hits={session['cross_system_hits']}"
    return line


def format_experiment(result, markdown: bool = False) -> str:
    """Experiment-level report: per-system cache-reuse totals.

    ``result`` is an
    :class:`~repro.experiments.runner.ExperimentResult` (duck-typed:
    ``plan_name``, ``records``, ``n_resumed``, ``per_system_totals()``).
    One row per system aggregates that system's scope deltas over the
    shared group sessions: evaluations requested vs. simulations paid,
    session-cache hits and the cross-step / cross-system subsets — the
    reuse the shared-session experiment layer provides.
    """
    totals = result.per_system_totals()
    headers = [
        "system",
        "runs",
        "steps",
        "evals",
        "sims",
        "cache hits",
        "cross-step",
        "cross-system",
        "sec",
    ]
    rows = [
        [
            system,
            t["runs"],
            t["steps"],
            t["evaluations"],
            t["simulations"],
            t["cache_hits"],
            t["cross_step_hits"],
            t["cross_system_hits"],
            round(t["seconds"], 2),
        ]
        for system, t in totals.items()
    ]
    n_records = len(result.records)
    saved = sum(
        t["evaluations"] - t["simulations"] for t in totals.values()
    )
    cross_system = sum(t["cross_system_hits"] for t in totals.values())
    head = (
        f"experiment: plan={result.plan_name} runs={n_records} "
        f"(resumed {result.n_resumed}) simulations-saved={saved} "
        f"cross-system-hits={cross_system}"
    )
    return head + "\n" + format_table(headers, rows, markdown=markdown)


def format_sweep(sweep, markdown: bool = False) -> str:
    """The sweep table (mean ± std per cell) plus per-case winners.

    ``sweep`` is a :class:`~repro.analysis.sweeps.SweepResult`
    (duck-typed: ``table_rows()``, ``cases()``, ``winner()``).
    """
    headers = ["system", "case", "quality", "evals", "sec"]
    out = format_table(headers, sweep.table_rows(), markdown=markdown)

    def winner_of(case: str) -> str:
        from repro.errors import ReproError

        try:
            return sweep.winner(case)
        except ReproError:  # no cell with a valid mean: no winner
            return "—"

    winners = ", ".join(
        f"{case}: {winner_of(case)}" for case in sweep.cases()
    )
    return out + ("\nwinners — " + winners if winners else "")


def format_run(run: RunResult, markdown: bool = False) -> str:
    """Per-step table of one system run (the Fig. 1/3 pipeline log)."""
    headers = ["step", "Kign", "cal. fitness", "quality", "best fitness", "evals", "sec"]
    rows = [
        [
            r["step"],
            r["kign"],
            r["cal_fitness"],
            r["quality"],
            r["best_fitness"],
            r["evaluations"],
            r["seconds"],
        ]
        for r in run.summary_rows()
    ]
    title = f"{run.system}: mean quality {run.mean_quality():.4f}, " \
            f"{run.total_evaluations()} simulations, {run.total_time():.2f}s"
    out = title + "\n" + format_table(headers, rows, markdown=markdown)
    for line in (format_engine_totals(run), format_session_totals(run)):
        if line:
            out += "\n" + line
    return out


def format_comparison(cmp: QualityComparison, markdown: bool = False) -> str:
    """The E1 table: systems × prediction steps + summary columns."""
    headers = ["system"] + [f"step {s}" for s in cmp.steps] + [
        "mean",
        "evals",
        "sec",
    ]
    rows = []
    for i, name in enumerate(cmp.systems):
        rows.append(
            [name]
            + [float(q) for q in cmp.quality[i]]
            + [
                float(cmp.mean_quality[i]),
                int(cmp.evaluations[i]),
                float(cmp.seconds[i]),
            ]
        )
    table = format_table(headers, rows, markdown=markdown)
    return table + f"\nwinner: {cmp.winner()}"
