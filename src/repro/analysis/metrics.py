"""Cross-system comparison metrics (experiments E1, E3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.parallel.timing import efficiency, speedup
from repro.systems.results import RunResult

__all__ = ["QualityComparison", "compare_runs", "speedup_table"]


@dataclass(frozen=True)
class QualityComparison:
    """Quality-per-step comparison across systems (the E1 table).

    Attributes
    ----------
    systems:
        System names, in presentation order.
    steps:
        The 1-based step indices that have predictions (step ≥ 2).
    quality:
        Array ``(n_systems, n_steps)`` of Eq. 3 prediction qualities.
    mean_quality:
        Per-system mean over the prediction steps.
    evaluations, seconds:
        Per-system totals (cost side of the comparison).
    """

    systems: tuple[str, ...]
    steps: tuple[int, ...]
    quality: np.ndarray
    mean_quality: np.ndarray
    evaluations: np.ndarray
    seconds: np.ndarray

    def winner(self) -> str:
        """System with the highest mean quality."""
        return self.systems[int(np.argmax(self.mean_quality))]

    def margin_over(self, baseline: str) -> float:
        """Winner's mean-quality ratio over a named baseline system."""
        if baseline not in self.systems:
            raise ReproError(f"unknown baseline {baseline!r}; have {self.systems}")
        base = self.mean_quality[self.systems.index(baseline)]
        if base <= 0:
            return float("inf")
        return float(self.mean_quality.max() / base)


def compare_runs(runs: list[RunResult]) -> QualityComparison:
    """Align several systems' runs (same fire, same steps) into one table."""
    if not runs:
        raise ReproError("need at least one run to compare")
    n_steps = len(runs[0].steps)
    for run in runs:
        if len(run.steps) != n_steps:
            raise ReproError(
                "runs cover different step counts: "
                f"{[len(r.steps) for r in runs]}"
            )
    pred_steps = tuple(
        s.step for s in runs[0].steps if s.has_prediction
    )
    quality = np.asarray(
        [
            [s.prediction_quality for s in run.steps if s.has_prediction]
            for run in runs
        ]
    )
    return QualityComparison(
        systems=tuple(run.system for run in runs),
        steps=pred_steps,
        quality=quality,
        mean_quality=quality.mean(axis=1) if quality.size else np.zeros(len(runs)),
        evaluations=np.asarray([run.total_evaluations() for run in runs]),
        seconds=np.asarray([run.total_time() for run in runs]),
    )


def speedup_table(
    serial_seconds: float, parallel_seconds: dict[int, float]
) -> list[dict]:
    """E3 rows: workers → (seconds, speedup, efficiency).

    ``parallel_seconds`` maps worker counts to measured wall-clock.
    """
    rows = [
        {
            "workers": 1,
            "seconds": round(serial_seconds, 4),
            "speedup": 1.0,
            "efficiency": 1.0,
        }
    ]
    for workers in sorted(parallel_seconds):
        secs = parallel_seconds[workers]
        rows.append(
            {
                "workers": workers,
                "seconds": round(secs, 4),
                "speedup": round(speedup(serial_seconds, secs), 3),
                "efficiency": round(
                    efficiency(serial_seconds, secs, workers), 3
                ),
            }
        )
    return rows
