"""Synthetic reference fires — the stand-in for real burned maps.

A :class:`ReferenceFire` holds what the prediction systems are allowed
to see: the terrain and the sequence of really-burned regions at the
prediction instants t₀ < t₁ < … < t_T (the filled interiors of the
RFL_t fire lines). It is produced by simulating a *hidden* true
scenario; the true scenario is stored only for analysis and is never
read by any system.

Two generation modes:

* **static** — one true scenario drives the whole fire (the classic
  lineage benchmark).
* **dynamic** — a per-step scenario schedule (e.g. a wind shift halfway
  through) models the "rapidly changing conditions" the paper's §IV
  names as the hard case for fitness-only result harvesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.scenario import Scenario
from repro.errors import WorkloadError
from repro.firelib.simulator import FireSimulator
from repro.grid.terrain import Terrain

__all__ = ["ReferenceFire", "make_reference_fire"]


@dataclass(frozen=True)
class ReferenceFire:
    """The ground truth a prediction run is scored against.

    Attributes
    ----------
    terrain:
        The landscape (shared with the predictors).
    instants:
        Monotonically increasing times in minutes; ``instants[0]`` is
        the observation start (its mask is the initial burned region).
    burned_masks:
        ``burned_masks[i]`` is the really-burned region at
        ``instants[i]`` (boolean, terrain-shaped). Masks are
        monotonically non-decreasing (fire does not unburn).
    true_scenarios:
        The hidden scenario driving each step (``len == n_steps``);
        analysis-only.
    description:
        Human-readable provenance.
    """

    terrain: Terrain
    instants: tuple[float, ...]
    burned_masks: tuple[np.ndarray, ...]
    true_scenarios: tuple[Scenario, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.instants) < 2:
            raise WorkloadError("a reference fire needs at least two instants")
        if len(self.burned_masks) != len(self.instants):
            raise WorkloadError(
                f"{len(self.burned_masks)} masks for {len(self.instants)} instants"
            )
        if len(self.true_scenarios) != self.n_steps:
            raise WorkloadError(
                f"{len(self.true_scenarios)} scenarios for {self.n_steps} steps"
            )
        times = np.asarray(self.instants, dtype=np.float64)
        if not (np.diff(times) > 0).all():
            raise WorkloadError(f"instants must strictly increase: {self.instants}")
        prev = None
        for i, mask in enumerate(self.burned_masks):
            m = np.asarray(mask, dtype=bool)
            if m.shape != self.terrain.shape:
                raise WorkloadError(
                    f"mask {i} shape {m.shape} != terrain {self.terrain.shape}"
                )
            if prev is not None and (prev & ~m).any():
                raise WorkloadError(f"burned region shrank between instants {i-1} and {i}")
            prev = m

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        """Number of prediction steps (= len(instants) − 1)."""
        return len(self.instants) - 1

    def step_horizon(self, step: int) -> float:
        """Duration in minutes of 1-based step ``step``."""
        self._check_step(step)
        return float(self.instants[step] - self.instants[step - 1])

    def start_mask(self, step: int) -> np.ndarray:
        """Burned region at the start of 1-based step ``step``."""
        self._check_step(step)
        return np.asarray(self.burned_masks[step - 1], dtype=bool)

    def real_mask(self, step: int) -> np.ndarray:
        """Really-burned region at the end of 1-based step ``step``."""
        self._check_step(step)
        return np.asarray(self.burned_masks[step], dtype=bool)

    def growth_cells(self, step: int) -> int:
        """Cells newly burned during the step (the prediction target)."""
        return int((self.real_mask(step) & ~self.start_mask(step)).sum())

    def _check_step(self, step: int) -> None:
        if not (1 <= step <= self.n_steps):
            raise WorkloadError(
                f"step must be in 1..{self.n_steps}, got {step}"
            )


def make_reference_fire(
    terrain: Terrain,
    true_scenario: Scenario | Sequence[Scenario],
    ignition: Sequence[tuple[int, int]],
    n_steps: int,
    step_minutes: float,
    n_neighbors: int = 8,
    description: str = "",
) -> ReferenceFire:
    """Simulate the hidden truth and slice it into step masks.

    Parameters
    ----------
    terrain:
        The landscape.
    true_scenario:
        Either one scenario (static conditions) or one per step
        (dynamic conditions — each step re-simulates from the previous
        mask under its own scenario).
    ignition:
        Ignition cells at t=0.
    n_steps:
        Number of prediction steps (≥ 2 so at least one PS happens).
    step_minutes:
        Uniform step duration.

    Raises
    ------
    WorkloadError
        If the true fire fails to grow in some step (a degenerate
        reference that would make every prediction vacuously perfect),
        or if it saturates the whole grid (no frontier left to
        predict).
    """
    if n_steps < 2:
        raise WorkloadError(f"n_steps must be >= 2, got {n_steps}")
    if step_minutes <= 0:
        raise WorkloadError(f"step_minutes must be positive, got {step_minutes}")
    scenarios: list[Scenario]
    if isinstance(true_scenario, Scenario):
        scenarios = [true_scenario] * n_steps
    else:
        scenarios = list(true_scenario)
        if len(scenarios) != n_steps:
            raise WorkloadError(
                f"{len(scenarios)} scenarios for {n_steps} steps"
            )

    sim = FireSimulator(terrain, n_neighbors=n_neighbors)
    masks: list[np.ndarray] = []
    initial = np.zeros(terrain.shape, dtype=bool)
    blocked = terrain.blocked_mask()
    for r, c in ignition:
        if not terrain.contains(r, c):
            raise WorkloadError(f"ignition cell {(r, c)} outside the terrain")
        if blocked[r, c]:
            raise WorkloadError(f"ignition cell {(r, c)} is unburnable")
        initial[r, c] = True
    masks.append(initial)

    burned = initial
    for step, scenario in enumerate(scenarios, start=1):
        result = sim.simulate_from_burned(scenario, burned, step_minutes)
        new_burned = result.burned() | burned
        if new_burned.sum() == burned.sum():
            raise WorkloadError(
                f"the true fire did not grow during step {step}; pick a "
                "more flammable true scenario or longer steps"
            )
        burnable = (~blocked).sum()
        if new_burned.sum() >= burnable:
            raise WorkloadError(
                f"the true fire saturated the grid at step {step}; use a "
                "larger terrain or shorter steps"
            )
        masks.append(new_burned)
        burned = new_burned

    instants = tuple(step_minutes * i for i in range(n_steps + 1))
    return ReferenceFire(
        terrain=terrain,
        instants=instants,
        burned_masks=tuple(masks),
        true_scenarios=tuple(scenarios),
        description=description,
    )
