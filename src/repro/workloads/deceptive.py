"""A simulator-free deceptive fitness landscape over the Table I box.

§II-C: "an objective function is deceptive with respect to a given
algorithm when the combination ... of solutions of high fitness leads to
solutions of lower fitness and vice versa". This landscape realises the
classic trap structure in the scenario space:

* only a few **active coordinates** matter (default: ``WindSpd`` and
  ``WindDir`` — the two the fire physics is most sensitive to);
* a **narrow global peak** (fitness up to 1.0) around a hidden optimum
  in the active subspace, of normalised radius ``peak_width``;
* a **deceptive slope** everywhere else whose gradient points *away*
  from the peak — fitness grows with active-distance from the optimum,
  topping out at ``trap_height`` < 1.

A fitness-guided search follows the slope away from the peak and
plateaus at the trap height; Novelty Search ignores the slope — its
population keeps spraying across behaviour (fitness) levels, so its
genotypes never concentrate in the trap corner, and its ``bestSet``
*remembers* a peak hit the moment one occurs (the §II-C point that
conventional metaheuristics "may lose high fitness solutions in
intermediate iterations" while NS keeps a memory of the best).

The landscape is a :class:`~repro.parallel.executor.BatchProblem`, so it
plugs into every evaluator and algorithm exactly like the wildfire
problem.
"""

from __future__ import annotations

import numpy as np

from repro.core.scenario import ParameterSpace
from repro.errors import WorkloadError
from repro.rng import ensure_rng

__all__ = ["DeceptiveLandscape"]


class DeceptiveLandscape:
    """Trap landscape with a hidden optimum in the scenario space.

    Parameters
    ----------
    space:
        The genome space (defaults to Table I).
    optimum:
        Hidden optimum genome; sampled uniformly when omitted.
    active_dims:
        Coordinates the fitness depends on (default ``(1, 2)``:
        WindSpd, WindDir). Fewer active dims → geometrically findable
        peak; the trap stays deceptive regardless.
    peak_width:
        Normalised active-distance radius of the global peak
        (0 < w < 0.5).
    trap_height:
        Fitness attained at the deceptive far end (0 < h < 1).
    rng:
        Used only to sample a random optimum.
    """

    def __init__(
        self,
        space: ParameterSpace | None = None,
        optimum: np.ndarray | None = None,
        active_dims: tuple[int, ...] = (1, 2),
        peak_width: float = 0.03,
        trap_height: float = 0.6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.space = space or ParameterSpace()
        if optimum is None:
            optimum = self.space.sample(1, ensure_rng(rng))[0]
        optimum = np.asarray(optimum, dtype=np.float64)
        if optimum.shape != (self.space.dimension,):
            raise WorkloadError(
                f"optimum shape {optimum.shape} != ({self.space.dimension},)"
            )
        if not active_dims:
            raise WorkloadError("need at least one active dimension")
        if any(not (0 <= j < self.space.dimension) for j in active_dims):
            raise WorkloadError(
                f"active_dims {active_dims} outside 0..{self.space.dimension - 1}"
            )
        if not (0.0 < peak_width < 0.5):
            raise WorkloadError(f"peak_width must be in (0, 0.5), got {peak_width}")
        if not (0.0 < trap_height < 1.0):
            raise WorkloadError(f"trap_height must be in (0, 1), got {trap_height}")
        self.optimum = optimum
        self.active_dims = tuple(active_dims)
        self.peak_width = peak_width
        self.trap_height = trap_height

    # ------------------------------------------------------------------
    def distance_to_optimum(self, genomes: np.ndarray) -> np.ndarray:
        """Mean normalised distance to the optimum over the active dims.

        Circular parameters (e.g. WindDir) use wrap-around distance.
        """
        genomes = np.atleast_2d(np.asarray(genomes, dtype=np.float64))
        total = np.zeros(genomes.shape[0])
        for j in self.active_dims:
            spec = self.space.specs[j]
            d = np.abs(genomes[:, j] - self.optimum[j])
            if spec.circular:
                d = np.minimum(d, spec.span - d)
            total += d / spec.span
        return total / len(self.active_dims)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Trap fitness of each genome (see module docstring)."""
        d = self.distance_to_optimum(genomes)
        on_peak = d < self.peak_width
        # 1.0 at the optimum, 0.8 at the peak rim.
        peak = 1.0 - (d / self.peak_width) * 0.2
        # Deceptive slope: grows with distance, saturating at the trap
        # height near the far end of the active subspace (max distance
        # for a circular+linear pair is ~0.75; 0.5 keeps a live
        # gradient over most of the box).
        trap = self.trap_height * np.minimum(d / 0.5, 1.0)
        return np.where(on_peak, peak, trap)

    def solved_by(self, genomes: np.ndarray, threshold: float | None = None) -> bool:
        """Whether any genome scores above every off-peak fitness."""
        threshold = self.trap_height if threshold is None else threshold
        return bool((self.evaluate_batch(genomes) > threshold).any())
