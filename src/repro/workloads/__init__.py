"""Workloads: reference fires and benchmark cases.

The lineage papers evaluate on burned maps of real controlled burns —
data we do not have. :mod:`~repro.workloads.synthetic` substitutes
*synthetic reference fires*: a hidden "true" scenario (possibly changing
over time) is simulated once and its burned maps at discrete instants
play the role of the real fire lines RFL_t. The predictors never see
the true scenario, so the uncertainty-reduction code path is identical.

:mod:`~repro.workloads.cases` packages the canonical cases used by the
examples/benchmarks; :mod:`~repro.workloads.deceptive` provides a
simulator-free deceptive fitness landscape for algorithm-level
experiments (the failure mode NS is designed to beat).
"""

from repro.workloads.synthetic import ReferenceFire, make_reference_fire
from repro.workloads.cases import (
    grassland_case,
    heterogeneous_case,
    dynamic_wind_case,
    river_gap_case,
    CASE_BUILDERS,
)
from repro.workloads.deceptive import DeceptiveLandscape
from repro.workloads.mosaic import random_fuel_mosaic

__all__ = [
    "ReferenceFire",
    "make_reference_fire",
    "grassland_case",
    "heterogeneous_case",
    "dynamic_wind_case",
    "river_gap_case",
    "CASE_BUILDERS",
    "DeceptiveLandscape",
    "random_fuel_mosaic",
]
