"""Canonical benchmark cases.

Each builder returns a :class:`~repro.workloads.synthetic.ReferenceFire`
sized so a full four-system comparison runs in seconds on a laptop. The
``size`` and ``n_steps`` knobs scale them up for the benchmarks.

* :func:`grassland_case` — homogeneous short grass, steady moderate
  wind: the easy case every system should handle.
* :func:`heterogeneous_case` — fuel patches (grass / brush / timber
  litter): per-cell fuel overrides make single-scenario fits
  imperfect, so combining multiple overlapping solutions pays off.
* :func:`dynamic_wind_case` — the wind veers 90° halfway through: the
  §IV "rapidly changing conditions" stressor where a converged
  population ages badly.
* :func:`river_gap_case` — an unburnable river with one ford: a
  deceptive landscape (scenarios must push the fire through the gap;
  "almost right" scenarios score far worse than the structure of the
  space suggests).
"""

from __future__ import annotations

from typing import Callable

from repro.core.scenario import Scenario
from repro.grid.terrain import Terrain
from repro.workloads.synthetic import ReferenceFire, make_reference_fire

__all__ = [
    "grassland_case",
    "heterogeneous_case",
    "dynamic_wind_case",
    "river_gap_case",
    "CASE_BUILDERS",
]


def _base_scenario(**overrides) -> Scenario:
    values = dict(
        model=1,
        wind_speed=8.0,
        wind_dir=90.0,
        m1=6.0,
        m10=8.0,
        m100=10.0,
        mherb=60.0,
        slope=5.0,
        aspect=270.0,
    )
    values.update(overrides)
    return Scenario(**values)


def grassland_case(size: int = 60, n_steps: int = 4) -> ReferenceFire:
    """Homogeneous short grass under a steady easterly push."""
    terrain = Terrain.uniform(size, size, cell_size=30.0)
    scenario = _base_scenario()
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(size // 2, size // 4)],
        n_steps=n_steps,
        step_minutes=25.0,
        description=f"grassland {size}x{size}, steady wind, {n_steps} steps",
    )


def heterogeneous_case(size: int = 60, n_steps: int = 4) -> ReferenceFire:
    """Grass with brush and timber-litter patches."""
    q = size // 4
    terrain = Terrain.with_fuel_patches(
        size,
        size,
        base_model=1,
        patches=[
            (slice(0, size // 2), slice(2 * q, 3 * q), 5),  # brush band
            (slice(size // 2, size), slice(q, 2 * q), 8),  # timber litter
        ],
        cell_size=30.0,
    )
    scenario = _base_scenario(wind_speed=10.0)
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(size // 2, size // 6)],
        n_steps=n_steps,
        step_minutes=30.0,
        description=f"heterogeneous fuels {size}x{size}, {n_steps} steps",
    )


def dynamic_wind_case(size: int = 60, n_steps: int = 4) -> ReferenceFire:
    """Wind veers from East to South halfway through the fire."""
    terrain = Terrain.uniform(size, size, cell_size=30.0)
    first = _base_scenario(wind_speed=9.0, wind_dir=90.0)
    second = first.replace(wind_dir=180.0)
    half = n_steps // 2
    schedule = [first] * half + [second] * (n_steps - half)
    return make_reference_fire(
        terrain,
        schedule,
        ignition=[(size // 3, size // 3)],
        n_steps=n_steps,
        step_minutes=25.0,
        description=f"dynamic wind shift {size}x{size}, {n_steps} steps",
    )


def river_gap_case(size: int = 60, n_steps: int = 4) -> ReferenceFire:
    """An unburnable river crossed through a single ford (deceptive)."""
    terrain = Terrain.with_river(
        size,
        size,
        river_col=size // 2,
        width=2,
        gap_row=size // 2,
        cell_size=30.0,
    )
    scenario = _base_scenario(wind_speed=12.0)
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(size // 2, size // 5)],
        n_steps=n_steps,
        step_minutes=30.0,
        description=f"river with ford {size}x{size}, {n_steps} steps",
    )


#: Name → builder registry used by examples and benches.
CASE_BUILDERS: dict[str, Callable[..., ReferenceFire]] = {
    "grassland": grassland_case,
    "heterogeneous": heterogeneous_case,
    "dynamic_wind": dynamic_wind_case,
    "river_gap": river_gap_case,
}
