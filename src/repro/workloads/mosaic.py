"""Random fuel-mosaic terrains (realistic heterogeneous landscapes).

The canonical cases use hand-placed fuel patches; real landscapes are
patchy at many scales. This module grows a random mosaic by seeded
region growth (a cheap substitute for classified satellite fuel maps):
``n_patches`` seed cells are drawn, each with a fuel model from a
weighted palette, and every cell takes the model of its nearest seed
(Voronoi regions under the 8-neighbour metric — grown with the same
Dijkstra used by the propagation kernel, so patch shapes are organic).

Optionally a fraction of cells becomes unburnable (rock/water pockets),
and slope/aspect follow a smooth random hill field built from a few
superposed cosine bumps.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import WorkloadError
from repro.grid.terrain import Terrain
from repro.rng import ensure_rng

__all__ = ["random_fuel_mosaic"]

#: Default palette: (fuel code, weight) — grass-dominated wildland with
#: brush and timber-litter inclusions, per the NFFL grouping.
_DEFAULT_PALETTE: tuple[tuple[int, float], ...] = (
    (1, 0.40),
    (2, 0.20),
    (5, 0.15),
    (8, 0.15),
    (10, 0.10),
)


def random_fuel_mosaic(
    rows: int,
    cols: int,
    n_patches: int = 12,
    palette: tuple[tuple[int, float], ...] = _DEFAULT_PALETTE,
    unburnable_fraction: float = 0.0,
    hilly: bool = False,
    max_slope: float = 25.0,
    cell_size: float = 30.0,
    rng: np.random.Generator | int | None = None,
) -> Terrain:
    """Generate a random heterogeneous terrain.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.
    n_patches:
        Number of mosaic regions (≥ 1).
    palette:
        ``(fuel code, weight)`` pairs the patches draw from.
    unburnable_fraction:
        Fraction of cells turned unburnable, placed as small pockets.
    hilly:
        Add a smooth random slope/aspect field.
    max_slope:
        Peak slope of the hill field, degrees.
    rng:
        Seeded generator (or seed) — the mosaic is fully reproducible.
    """
    if n_patches < 1:
        raise WorkloadError(f"n_patches must be >= 1, got {n_patches}")
    if not (0.0 <= unburnable_fraction < 0.5):
        raise WorkloadError(
            f"unburnable_fraction must be in [0, 0.5), got {unburnable_fraction}"
        )
    if not palette:
        raise WorkloadError("palette must not be empty")
    codes = np.array([c for c, _ in palette])
    weights = np.array([w for _, w in palette], dtype=np.float64)
    if (weights <= 0).any():
        raise WorkloadError("palette weights must be positive")
    weights = weights / weights.sum()

    gen = ensure_rng(rng)
    seeds_r = gen.integers(0, rows, size=n_patches)
    seeds_c = gen.integers(0, cols, size=n_patches)
    seed_codes = gen.choice(codes, size=n_patches, p=weights)

    # Multi-source Dijkstra with unit metric: each cell adopts the fuel
    # model of its nearest seed (ties by arrival order → organic borders).
    dist = np.full((rows, cols), np.inf)
    fuel = np.zeros((rows, cols), dtype=np.int64)
    heap: list[tuple[float, int, int, int]] = []
    for i in range(n_patches):
        r, c = int(seeds_r[i]), int(seeds_c[i])
        if 0.0 < dist[r, c]:
            dist[r, c] = 0.0
            fuel[r, c] = seed_codes[i]
            heapq.heappush(heap, (0.0, r, c, int(seed_codes[i])))
    offsets = ((-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (-1, 1), (1, -1), (1, 1))
    while heap:
        d, r, c, code = heapq.heappop(heap)
        if d > dist[r, c]:
            continue
        for dr, dc in offsets:
            nr, nc = r + dr, c + dc
            if not (0 <= nr < rows and 0 <= nc < cols):
                continue
            nd = d + (1.0 if dr == 0 or dc == 0 else 1.41421356)
            if nd < dist[nr, nc]:
                dist[nr, nc] = nd
                fuel[nr, nc] = code
                heapq.heappush(heap, (nd, nr, nc, code))

    unburnable = None
    if unburnable_fraction > 0:
        target = int(round(rows * cols * unburnable_fraction))
        unburnable = np.zeros((rows, cols), dtype=bool)
        while unburnable.sum() < target:
            r = int(gen.integers(0, rows))
            c = int(gen.integers(0, cols))
            radius = int(gen.integers(1, max(2, min(rows, cols) // 10)))
            rr, cc = np.ogrid[:rows, :cols]
            unburnable |= (rr - r) ** 2 + (cc - c) ** 2 <= radius**2

    slope = aspect = None
    if hilly:
        yy, xx = np.meshgrid(
            np.linspace(0, 2 * np.pi, rows),
            np.linspace(0, 2 * np.pi, cols),
            indexing="ij",
        )
        elevation = np.zeros((rows, cols))
        for _ in range(3):
            fy, fx = gen.uniform(0.5, 2.0, size=2)
            py, px = gen.uniform(0, 2 * np.pi, size=2)
            elevation += gen.uniform(0.3, 1.0) * np.cos(fy * yy + py) * np.cos(
                fx * xx + px
            )
        gy, gx = np.gradient(elevation)
        grad = np.hypot(gy, gx)
        peak = grad.max()
        slope = (grad / peak * max_slope) if peak > 0 else np.zeros_like(grad)
        # aspect: compass azimuth of the downslope direction
        aspect = np.degrees(np.arctan2(gx, gy)) % 360.0

    return Terrain(
        rows=rows,
        cols=cols,
        cell_size=cell_size,
        fuel=fuel,
        slope=slope,
        aspect=aspect,
        unburnable=unburnable,
    )
