"""Always-on prediction service: many plans, one worker fleet.

Everything below :mod:`repro.experiments` answers "run *this plan* to
completion". This package answers the serving question instead: keep a
worker fleet warm and feed it plans as tenants submit them —

* :class:`PlanQueue` — the multi-plan coordinator state: one
  :class:`~repro.distributed.coordinator.UnitLedger` and one
  :class:`~repro.experiments.store.ResultsStore` per submitted plan,
  arbitrated by cost-model-weighted deficit-round-robin fair share
  (per-tenant ``priority``), with keyed idempotent job ids, admission
  backpressure, and a spool directory that survives restarts;
* :class:`ServiceCoordinator` — the worker-facing TCP endpoint,
  speaking the unchanged fleet wire protocol (multi-plan variant:
  ``unit`` grants name their plan and ship its payload inline);
* :class:`ServiceGateway` — the client-facing asyncio HTTP API
  (submit, poll, stream records with resume-by-offset, cancel, drain
  workers, ``/metrics``);
* :class:`PredictionService` — the assembled service behind
  ``repro serve``.

The service schedules; it never simulates. Every record a plan
produces through the service is bitwise-identical (in the
:func:`~repro.experiments.store.parity_view`) to the record the same
plan produces inline — whichever tenants it shared the fleet with.
"""

from repro.service.app import PredictionService
from repro.service.coordinator import ServiceCoordinator
from repro.service.gateway import ServiceGateway
from repro.service.queue import (
    AdmissionError,
    PlanJob,
    PlanQueue,
    ServiceError,
    UnknownPlanError,
    plan_job_id,
)

__all__ = [
    "AdmissionError",
    "PlanJob",
    "PlanQueue",
    "PredictionService",
    "ServiceCoordinator",
    "ServiceError",
    "ServiceGateway",
    "UnknownPlanError",
    "plan_job_id",
]
