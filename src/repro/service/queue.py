"""Multi-plan scheduling: a fair-share queue of independent ledgers.

The single-plan :class:`~repro.distributed.coordinator.UnitLedger`
answers one question — *which unit does this worker run next?* — for
one plan. A long-lived service multiplexes many tenants' plans onto
one shared worker pool, so the :class:`PlanQueue` generalises the
ledger into a queue of them: every submitted plan becomes a
:class:`PlanJob` with its own ledger, its own per-plan
:class:`~repro.experiments.store.ResultsStore` (the resume/idempotency
contract is per plan), and a keyed job id — the digest of
``(tenant, plan payload)``, so a client retrying a submission lands on
the job it already created instead of a duplicate.

**Fair share.** Grants are arbitrated by cost-model-weighted deficit
round-robin. Every job carries a deficit counter (predicted seconds it
is owed). When a grant of predicted cost ``c`` is issued, ``c`` is
first distributed as credit across the active jobs proportionally to
their ``priority``, then charged in full to the granted job:

* deficits sum to ~zero over time, so a job's deficit *is* its
  deviation from weighted fair share;
* the next grant goes to the job with the highest deficit (ties break
  toward earlier submission), so one huge bulk plan cannot starve an
  interactive tenant: each grant it takes pushes its deficit further
  negative while everyone else's rises;
* a late submission starts at deficit zero — already ahead of
  whatever has been monopolising the pool — and a higher ``priority``
  makes it accrue credit faster, so it overtakes a queued bulk plan
  rather than waiting behind it.

The costs come from one service-wide
:class:`~repro.experiments.costs.UnitCostModel` shared by every job's
ledger (and persisted to a spool sidecar across restarts), so a unit's
price — and therefore each tenant's measured share — is consistent
across plans.

Scheduling moves only *where and when* cells run. Every record is
reproducible from ``(plan, seed)`` alone, so a plan run through the
service is bitwise-identical (in the
:func:`~repro.experiments.store.parity_view`) to the same plan run
inline, whatever the interleaving.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.distributed.coordinator import UnitLedger
from repro.distributed.protocol import FleetError
from repro.errors import ReproError
from repro.experiments.costs import (
    DEFAULT_SLOW_UNIT_FACTOR,
    UnitCostModel,
    load_cost_model,
    save_cost_model,
    seed_plan_priors,
)
from repro.experiments.plan import ExperimentPlan
from repro.experiments.store import ResultsStore, record_key
from repro.experiments.work import WorkSet
from repro.obs import telemetry

__all__ = [
    "AdmissionError",
    "PlanJob",
    "PlanQueue",
    "ServiceError",
    "UnknownPlanError",
    "plan_job_id",
]

log = logging.getLogger("repro.service.queue")


class ServiceError(ReproError):
    """A service-layer failure (bad submission, unknown plan, ...)."""


class UnknownPlanError(ServiceError):
    """No job under that id (never submitted, or cancelled+restarted)."""


class AdmissionError(ServiceError):
    """Queue full: admission refused with a predicted retry time.

    ``retry_after`` is the cost model's predicted drain time of the
    currently admitted work divided over the live workers — the
    gateway turns it into a 429 with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


def plan_job_id(plan_payload: dict, tenant: str) -> str:
    """The keyed job id: a digest of ``(tenant, plan payload)``.

    Deterministic, so resubmitting the same plan is idempotent — the
    client gets its existing job back (and the per-plan store makes
    the re-run a no-op resume even across service restarts).
    """
    blob = json.dumps(
        {"tenant": tenant, "plan": plan_payload}, sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


class PlanJob:
    """One admitted plan: ledger + store + fair-share accounting."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        priority: float,
        plan: ExperimentPlan,
        store: ResultsStore,
        ledger: UnitLedger,
        index: int,
        trace: dict | None = None,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.priority = float(priority)
        self.plan = plan
        self.plan_payload = plan.to_dict()
        self.plan_cells = {k.as_tuple() for k in plan.runs()}
        # a unit is priced by its group's (case, backend) kernel —
        # the same mapping the ledger uses, duplicated here because
        # the fair-share charge happens at queue level
        self.kernel_of = {
            idx: UnitCostModel.kernel_key(case.name, backend)
            for idx, ((case, backend), _keys) in enumerate(plan.groups())
        }
        self.store = store
        self.store_lock = threading.Lock()
        self.ledger = ledger
        self.index = index  # submission order, the fair-share tiebreak
        self.trace = dict(trace) if trace else None
        self.state = "active"  # active | done | cancelled
        self.deficit = 0.0
        self.submitted = time.time()
        self.started: float | None = None
        self.finished: float | None = None

    def status(self) -> str:
        if self.state == "active":
            return "running" if self.started is not None else "queued"
        return self.state

    def recorded_cells(self) -> int:
        with self.store_lock:
            return len(self.store.completed() & self.plan_cells)

    def snapshot(self) -> dict:
        """The job as the gateway reports it (JSON-safe)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "plan": self.plan.name,
            "status": self.status(),
            "expected_cells": len(self.plan_cells),
            "recorded_cells": self.recorded_cells(),
            "progress": self.ledger.progress(),
            "deficit_seconds": self.deficit,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "store": str(self.store.path),
            "trace": dict(self.trace) if self.trace else None,
        }


class PlanQueue:
    """The multi-plan coordinator state: jobs, workers, fair share.

    Parameters
    ----------
    spool:
        Service state directory: ``plans/<id>.json`` (admitted
        submissions, reloaded on restart), ``stores/<id>.jsonl``
        (per-plan results stores) and ``costs.json`` (the persisted
        cost-model snapshot) live here.
    lease_timeout, min_unit_cells, target_unit_seconds,
    slow_unit_factor:
        Per-plan ledger knobs, identical in meaning to
        :class:`~repro.distributed.coordinator.UnitLedger`.
    max_active:
        Admission bound: at most this many jobs queued or running at
        once; beyond it :meth:`submit` raises :class:`AdmissionError`
        with the predicted drain time (resubmissions of an existing
        job are always admitted — idempotency must not bounce).
    clock:
        Monotonic time source (tests inject a fake).

    Every public method takes the queue lock; per-job ledgers and
    stores have their own locks nested strictly inside it, so the
    shared cost model is only ever mutated under the queue lock.
    """

    def __init__(
        self,
        spool: str | os.PathLike,
        lease_timeout: float = 30.0,
        min_unit_cells: int = 1,
        target_unit_seconds: float = 1.0,
        slow_unit_factor: float = DEFAULT_SLOW_UNIT_FACTOR,
        max_active: int = 8,
        clock=time.monotonic,
    ) -> None:
        if max_active < 1:
            raise ServiceError(
                f"max_active must be >= 1, got {max_active}"
            )
        self.spool = Path(spool)
        (self.spool / "plans").mkdir(parents=True, exist_ok=True)
        (self.spool / "stores").mkdir(parents=True, exist_ok=True)
        self.cost_snapshot_path = self.spool / "costs.json"
        self.lease_timeout = float(lease_timeout)
        self.min_unit_cells = int(min_unit_cells)
        self.target_unit_seconds = float(target_unit_seconds)
        self.slow_unit_factor = float(slow_unit_factor)
        self.max_active = int(max_active)
        self.clock = clock
        # one cost model for the whole service: rates measured while
        # serving one tenant's plan inform the next tenant's grants,
        # and the snapshot survives restarts (ROADMAP item 3)
        self.cost_model = (
            load_cost_model(self.cost_snapshot_path) or UnitCostModel()
        )
        self._jobs: dict[str, PlanJob] = {}
        self._order: list[str] = []
        self._draining: set[str] = set()
        self._worker_seen: dict[str, float] = {}
        self._lock = threading.RLock()
        self._restore_spool()

    # -- admission -----------------------------------------------------
    def _restore_spool(self) -> None:
        """Re-admit the plans a previous service process left behind.

        Their per-plan stores resume by the usual cell contract:
        whatever was recorded stays recorded, only missing cells are
        served. Fully recorded jobs flip to done on first
        housekeeping.
        """
        for path in sorted((self.spool / "plans").glob("*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                self._admit_locked(
                    data["plan"],
                    str(data.get("tenant", "default")),
                    float(data.get("priority", 1.0)),
                    trace=None,
                    persist=False,
                )
            except (OSError, ValueError, KeyError, ReproError) as exc:
                log.warning(
                    "ignoring unreadable spooled plan %s: %s", path, exc
                )

    def submit(
        self,
        plan_payload: dict,
        tenant: str = "default",
        priority: float = 1.0,
        trace: dict | None = None,
    ) -> tuple[PlanJob, bool]:
        """Admit a plan; returns ``(job, created)``.

        Resubmitting an identical ``(tenant, plan)`` returns the
        existing job (``created=False``) whatever its state — the
        keyed id makes client retries free. A full queue raises
        :class:`AdmissionError` carrying the predicted drain time.
        """
        if priority <= 0:
            raise ServiceError(
                f"priority must be positive, got {priority}"
            )
        with self._lock:
            self._housekeep_locked()
            job_id = plan_job_id(plan_payload, tenant)
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing, False
            active = [
                j for j in self._jobs.values() if j.state == "active"
            ]
            if len(active) >= self.max_active:
                retry_after = max(self.predicted_drain_seconds(), 1.0)
                telemetry().counter(
                    "repro_service_rejected_total"
                ).inc()
                raise AdmissionError(
                    f"queue full ({len(active)} active plans, "
                    f"max {self.max_active})",
                    retry_after=retry_after,
                )
            job = self._admit_locked(
                plan_payload, tenant, priority, trace, persist=True
            )
            telemetry().counter("repro_service_submissions_total").inc()
            return job, True

    def _admit_locked(
        self,
        plan_payload: dict,
        tenant: str,
        priority: float,
        trace: dict | None,
        persist: bool,
    ) -> PlanJob:
        try:
            plan = ExperimentPlan.from_dict(plan_payload)
        except ServiceError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            # a malformed plan is the submitter's error (HTTP 400),
            # not a service fault
            raise ServiceError(f"invalid plan payload: {exc}") from exc
        job_id = plan_job_id(plan_payload, tenant)
        store = ResultsStore(self.spool / "stores" / f"{job_id}.jsonl")
        store_lock = threading.Lock()

        def completed_cells() -> set[tuple[str, str, int, str]]:
            with store_lock:
                return store.completed()

        workset = WorkSet.compile(plan, store.completed())
        # new kernels get this plan's budget priors; kernels the
        # service has already measured (or restored) keep their rates
        seed_plan_priors(self.cost_model, plan, overwrite=False)
        ledger = UnitLedger(
            workset,
            self.lease_timeout,
            completed_cells,
            clock=self.clock,
            min_unit_cells=self.min_unit_cells,
            cost_model=self.cost_model,
            target_unit_seconds=self.target_unit_seconds,
            slow_unit_factor=self.slow_unit_factor,
        )
        job = PlanJob(
            job_id,
            tenant,
            priority,
            plan,
            store,
            ledger,
            index=len(self._order),
            trace=trace,
        )
        job.store_lock = store_lock  # the lock the ledger closure holds
        self._jobs[job_id] = job
        self._order.append(job_id)
        if persist:
            path = self.spool / "plans" / f"{job_id}.json"
            path.write_text(
                json.dumps(
                    {
                        "tenant": tenant,
                        "priority": priority,
                        "plan": plan.to_dict(),
                    },
                    sort_keys=True,
                    indent=2,
                )
                + "\n",
                encoding="utf-8",
            )
        log.info(
            "admitted plan %s (job %s, tenant %s, priority %g, "
            "%d cells pending)",
            plan.name,
            job_id,
            tenant,
            priority,
            workset.total_cells,
            extra={"plan": plan.name, "job": job_id, "tenant": tenant},
        )
        self._export_gauges_locked()
        return job

    def cancel(self, job_id: str) -> PlanJob:
        """Cancel a job: no further grants; in-flight units finish and
        their records land harmlessly in the job's store. Idempotent;
        cancelling a finished job leaves it ``done``. The spooled
        submission is removed so a restart does not resurrect it."""
        with self._lock:
            job = self.job(job_id)
            if job.state == "active":
                job.state = "cancelled"
                job.finished = time.time()
                log.info(
                    "cancelled job %s (%s)",
                    job.id,
                    job.plan.name,
                    extra={"job": job.id, "plan": job.plan.name},
                )
            try:
                (self.spool / "plans" / f"{job_id}.json").unlink()
            except OSError:
                pass
            self._export_gauges_locked()
            return job

    # -- worker protocol -----------------------------------------------
    def touch(self, worker: str) -> None:
        """Record contact from ``worker`` (service-level liveness)."""
        with self._lock:
            self._worker_seen[worker] = self.clock()

    def drain_worker(self, worker: str) -> None:
        """Gracefully retire ``worker``: it finishes leased units and
        is answered ``bye`` once nothing outstanding remains."""
        with self._lock:
            self._draining.add(worker)
            telemetry().counter("repro_fleet_drains_total").inc()
            log.info(
                "worker %s draining from service", worker,
                extra={"worker": worker},
            )

    def lease(self, worker: str) -> dict:
        """Answer one work request across all plans (the DRR pick)."""
        with self._lock:
            now = self.clock()
            self._worker_seen[worker] = now
            return self._decide_locked(worker, now)

    def heartbeat(
        self, worker: str, plan_id, lease_id, info: dict | None = None
    ) -> dict:
        with self._lock:
            self._worker_seen[worker] = self.clock()
            job = self._jobs.get(plan_id)
            if job is None:
                return {"type": "expired"}
            return job.ledger.heartbeat(worker, lease_id, info)

    def complete(
        self,
        worker: str,
        plan_id,
        lease_id,
        info: dict | None = None,
        records: list | None = None,
    ) -> dict:
        """Handle a unit completion; the reply always piggybacks the
        worker's next decision (``next``) — across *all* plans, which
        is what keeps a steady-state service worker at one round-trip
        per unit even when its next unit belongs to another tenant."""
        with self._lock:
            now = self.clock()
            self._worker_seen[worker] = now
            job = self._jobs.get(plan_id)
            drained = False
            if job is not None and isinstance(records, list):
                # merge BEFORE the ledger sees the completion so the
                # coverage check already counts these records
                wanted = [
                    r
                    for r in records
                    if record_key(r) in job.plan_cells
                ]
                with job.store_lock:
                    job.store.merge(wanted)
                drained = True
            if job is None:
                reply = {"type": "stale"}
            else:
                reply = job.ledger.complete(
                    worker,
                    lease_id,
                    info,
                    drained=drained,
                    grant_next=False,
                )
            reply["next"] = self._decide_locked(worker, now)
            return reply

    def merge_records(
        self, worker: str, plan_id, records: list
    ) -> dict:
        """A ``records`` upload routed to one plan's store."""
        if not isinstance(records, list):
            raise FleetError("records message without a record list")
        with self._lock:
            self._worker_seen[worker] = self.clock()
            job = self._jobs.get(plan_id)
            if job is None:
                # e.g. a drain for a plan cancelled out from under the
                # worker; its records have nowhere to go, which is fine
                # — a cancelled plan's store is already best-effort
                return {
                    "type": "ok",
                    "merged": 0,
                    "ignored": len(records),
                    "total": 0,
                }
            wanted = [
                r for r in records if record_key(r) in job.plan_cells
            ]
            with job.store_lock:
                merged = job.store.merge(wanted)
            job.ledger.drained(worker)
            return {
                "type": "ok",
                "merged": len(wanted),
                "ignored": len(records) - len(wanted),
                "total": merged["records"],
            }

    # -- the scheduling core -------------------------------------------
    def _decide_locked(self, worker: str, now: float) -> dict:
        """The multi-plan lease decision (queue lock held).

        Order of business mirrors the single-plan ledger: collect owed
        records first, honour drains, then the fair-share grant.
        """
        self._housekeep_locked()
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state != "cancelled" and job.ledger.worker_dirty(
                worker
            ):
                return {"type": "drain", "plan_id": job.id}
        if worker in self._draining:
            if any(
                self._jobs[j].ledger.holds_lease(worker)
                for j in self._order
            ):
                # only reachable when a retried ask races its own
                # lease; the safe answer is always "come back"
                return {"type": "wait"}
            return {"type": "bye"}
        candidates = [
            self._jobs[j]
            for j in self._order
            if self._jobs[j].state == "active"
            and self._jobs[j].ledger.grantable()
        ]
        if not candidates:
            # an always-on service never says "done": new plans may
            # arrive any moment, so idle workers just poll
            return {"type": "wait"}
        job = max(candidates, key=lambda j: (j.deficit, -j.index))
        reply = job.ledger.lease(worker)
        if reply.get("type") != "unit":
            return {"type": "wait"}
        cells = len((reply.get("unit") or {}).get("cells", ()))
        group = (reply.get("unit") or {}).get("group", -1)
        cost = self.cost_model.estimate(
            job.kernel_of.get(group, ""), cells
        )
        self._charge_locked(job, cost)
        if job.started is None:
            self._first_grant_locked(job, worker)
        reply["plan_id"] = job.id
        reply["plan"] = job.plan_payload
        if job.trace is not None:
            reply["trace"] = dict(job.trace)
        return reply

    def _charge_locked(self, chosen: PlanJob, cost: float) -> None:
        """Surplus-style DRR bookkeeping: the grant's predicted cost is
        credited across active jobs by priority weight, then debited
        from the grantee — deficits track deviation from weighted fair
        share and sum to ~zero."""
        active = [
            j for j in self._jobs.values() if j.state == "active"
        ]
        weight = sum(j.priority for j in active)
        if weight > 0:
            for j in active:
                j.deficit += cost * (j.priority / weight)
        chosen.deficit -= cost

    def _first_grant_locked(self, job: PlanJob, worker: str) -> None:
        """The submit→schedule transition: record the queueing latency
        and close the job's ``schedule`` span (hand-emitted — it
        started at submission, on the gateway's thread, and ends here
        on a coordinator handler thread)."""
        job.started = time.time()
        latency = max(job.started - job.submitted, 0.0)
        registry = telemetry()
        registry.histogram("repro_service_schedule_seconds").observe(
            latency
        )
        if job.trace is not None:
            registry.emit(
                {
                    "event": "span",
                    "span": "schedule",
                    "id": f"svc-{job.id}-schedule",
                    "parent": job.trace.get("parent_span"),
                    "trace_id": job.trace.get("trace_id"),
                    "depth": 1,
                    "start": job.submitted,
                    "seconds": latency,
                    "thread": threading.get_ident(),
                    "status": "ok",
                    "attrs": {
                        "plan_id": job.id,
                        "tenant": job.tenant,
                        "first_worker": worker,
                    },
                }
            )

    # -- housekeeping and introspection --------------------------------
    def housekeep(self) -> None:
        """Advance job states without worker traffic (timer-driven):
        lease expiry, coverage checks, done transitions."""
        with self._lock:
            self._housekeep_locked()

    def _housekeep_locked(self) -> None:
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state != "active":
                continue
            if job.ledger.poll_completion():
                job.state = "done"
                job.finished = time.time()
                log.info(
                    "job %s (%s) complete: %d cells",
                    job.id,
                    job.plan.name,
                    len(job.plan_cells),
                    extra={"job": job.id, "plan": job.plan.name},
                )
                # each finish refines the shared model; snapshot it so
                # even a crash-stopped service keeps what it learned
                self.save_costs()
                self._export_gauges_locked()

    def _export_gauges_locked(self) -> None:
        counts = {"queued": 0, "running": 0, "done": 0, "cancelled": 0}
        for job in self._jobs.values():
            counts[job.status()] += 1
        registry = telemetry()
        for state, n in counts.items():
            registry.gauge("repro_service_plans", state=state).set(n)
        registry.gauge("repro_service_queue_depth").set(
            counts["queued"] + counts["running"]
        )
        registry.gauge("repro_service_pending_cells").set(
            sum(
                j.ledger.progress()["pending_cells"]
                for j in self._jobs.values()
                if j.state == "active"
            )
        )

    def predicted_drain_seconds(self) -> float:
        """Cost-model prediction of when the admitted work drains,
        spread over the live (non-draining) workers — the Retry-After
        the gateway attaches to a 429."""
        with self._lock:
            total = sum(
                j.ledger.predicted_remaining_seconds()
                for j in self._jobs.values()
                if j.state == "active"
            )
            now = self.clock()
            live = [
                w
                for w, seen in self._worker_seen.items()
                if now - seen <= self.lease_timeout
                and w not in self._draining
            ]
            return total / max(len(live), 1)

    def job(self, job_id: str) -> PlanJob:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownPlanError(f"unknown plan {job_id!r}")
            return job

    def jobs(self) -> list[PlanJob]:
        with self._lock:
            return [self._jobs[j] for j in self._order]

    def workers(self) -> dict[str, dict]:
        """Service-level worker view (liveness + drain state)."""
        with self._lock:
            now = self.clock()
            return {
                w: {
                    "live": now - seen <= self.lease_timeout,
                    "draining": w in self._draining,
                }
                for w, seen in sorted(self._worker_seen.items())
            }

    def status(self) -> dict:
        """The service-wide snapshot (``status`` message, ``/status``)."""
        with self._lock:
            self._housekeep_locked()
            active = [
                j for j in self._jobs.values() if j.state == "active"
            ]
            return {
                "type": "status",
                "service": True,
                "plans": [
                    self._jobs[j].snapshot() for j in self._order
                ],
                "workers": self.workers(),
                "queue": {
                    "active": len(active),
                    "max_active": self.max_active,
                    "predicted_drain_seconds": (
                        self.predicted_drain_seconds()
                    ),
                },
                "costs": self.cost_model.to_dict(),
            }

    def save_costs(self) -> None:
        """Persist the shared cost model to the spool sidecar."""
        try:
            save_cost_model(self.cost_model, self.cost_snapshot_path)
        except OSError as exc:  # a hint, never worth failing serving
            log.warning(
                "could not persist cost snapshot %s: %s",
                self.cost_snapshot_path,
                exc,
            )
