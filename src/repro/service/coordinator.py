"""Multi-plan fleet endpoint: the service's worker-facing TCP server.

Same wire protocol, same handler, different brain: the
:class:`ServiceCoordinator` reuses the single-plan coordinator's
connection handler (framing + mutual HMAC auth live there) but routes
every message to a :class:`~repro.service.queue.PlanQueue` instead of
one ledger. The differences a worker observes:

* the ``welcome`` advertises ``multi_plan: true`` and carries **no
  plan** — there is no "the" plan; each ``unit`` grant ships its
  ``plan_id`` and plan payload inline and the worker echoes the id on
  ``heartbeat``/``complete``/``records``;
* ``piggyback`` is always on (the queue prices every grant with its
  cost model, so the low-round-trip loop is unconditional);
* there is no ``done`` — an always-on service never finishes; workers
  leave only via the ``drain`` → ``bye`` lifecycle.
"""

from __future__ import annotations

import logging
import socketserver
import threading
import time

from repro.distributed.coordinator import _CoordinatorHandler
from repro.distributed.protocol import FleetError, check_auth_token
from repro.obs import telemetry

from repro.service.queue import PlanQueue

__all__ = ["ServiceCoordinator"]

log = logging.getLogger("repro.service.coordinator")


class ServiceCoordinator:
    """Serve a :class:`PlanQueue` to fleet workers over TCP.

    Parameters
    ----------
    queue:
        The multi-plan scheduler every message is routed to.
    host, port:
        Listen address; port ``0`` lets the OS pick (read it back from
        :attr:`address` after :meth:`start`).
    share_sessions, poll_interval:
        Advertised to workers on ``welcome``, same meaning as the
        single-plan coordinator.
    auth_token:
        Shared secret for the mutual challenge–response handshake
        (``None`` disables authentication) — enforced by the shared
        connection handler before any dispatch here.
    """

    def __init__(
        self,
        queue: PlanQueue,
        host: str = "127.0.0.1",
        port: int = 0,
        share_sessions: bool = True,
        poll_interval: float = 0.5,
        auth_token: str | None = None,
    ) -> None:
        self.queue = queue
        self.host = host
        self.port = port
        self.share_sessions = bool(share_sessions)
        self.poll_interval = float(poll_interval)
        self.auth_token = check_auth_token(auth_token)
        self.address: tuple[str, int] | None = None
        self._server: _ServiceServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns ``(host, port)``."""
        server = _ServiceServer((self.host, self.port), self)
        self._server = server
        self.address = (
            server.server_address[0],
            int(server.server_address[1]),
        )
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="service-coordinator",
        )
        self._thread.start()
        log.info(
            "service coordinator listening on %s:%d", *self.address
        )
        return self.address

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def dispatch(self, message: dict) -> dict:
        """Route one fleet message to the queue (the handler calls this
        after framing and, when configured, authentication)."""
        mtype = message.get("type")
        worker = str(message.get("worker", ""))
        queue = self.queue
        if mtype == "hello":
            queue.touch(worker)
            return {
                "type": "welcome",
                "multi_plan": True,
                "piggyback": True,
                "share_sessions": self.share_sessions,
                "lease_timeout": queue.lease_timeout,
                "poll_interval": self.poll_interval,
            }
        if mtype == "lease":
            return queue.lease(worker)
        if mtype == "heartbeat":
            telemetry().fold_snapshot(
                message.get("metrics"), worker=worker
            )
            reply = queue.heartbeat(
                worker,
                message.get("plan_id"),
                message.get("lease"),
                message.get("telemetry"),
            )
            return _stamp_clock(message, reply)
        if mtype == "complete":
            telemetry().fold_snapshot(
                message.get("metrics"), worker=worker
            )
            reply = queue.complete(
                worker,
                message.get("plan_id"),
                message.get("lease"),
                message.get("telemetry"),
                message.get("records"),
            )
            return _stamp_clock(message, reply)
        if mtype == "records":
            return queue.merge_records(
                worker, message.get("plan_id"), message.get("records")
            )
        if mtype == "drain":
            target = str(message.get("target", "") or worker)
            if not target:
                raise FleetError("drain message without a target worker")
            queue.drain_worker(target)
            return {"type": "ok", "draining": target}
        if mtype == "status":
            # read-only, never counts as worker contact
            return queue.status()
        raise FleetError(f"unknown fleet message type {mtype!r}")


def _stamp_clock(message: dict, reply: dict) -> dict:
    """Echo a ``sent_at`` timestamp as a ``clock_offset`` estimate
    (identical semantics to the single-plan coordinator)."""
    sent = message.get("sent_at")
    if sent is not None:
        try:
            reply["clock_offset"] = time.time() - float(sent)
        except (TypeError, ValueError):
            pass
    return reply


class _ServiceServer(socketserver.ThreadingTCPServer):
    """The TCP shell: framing/auth handler + dispatch to the service.

    ``_CoordinatorHandler`` only touches ``server.auth_token`` and
    ``server.dispatch`` — exactly the surface this shim provides.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: tuple[str, int], service: ServiceCoordinator
    ) -> None:
        super().__init__(address, _CoordinatorHandler)
        self.auth_token = service.auth_token
        self.dispatch = service.dispatch
