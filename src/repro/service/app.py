"""The assembled prediction service: queue + fleet port + HTTP port.

:class:`PredictionService` wires the three service pieces together and
owns their lifecycles — what ``repro serve`` runs:

* a :class:`~repro.service.queue.PlanQueue` holding the spool, the
  shared cost model and the fair-share scheduler state;
* a :class:`~repro.service.coordinator.ServiceCoordinator` serving the
  fleet wire protocol to ``repro experiments worker`` processes;
* a :class:`~repro.service.gateway.ServiceGateway` serving HTTP to
  clients, hosted on a private event loop in a background thread (the
  service embeds in synchronous callers — the CLI, tests — without
  imposing asyncio on them);
* a housekeeping timer driving :meth:`PlanQueue.housekeep`, so jobs
  whose last records arrived via a worker that then left still flip to
  ``done`` (state must advance without requiring worker traffic).

``close()`` persists the cost-model snapshot — together with the
spool's plans and stores, a restarted service resumes scheduling with
everything the previous process had learned and admitted.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import threading

from repro.obs.http import clear_status_provider, set_status_provider

from repro.service.coordinator import ServiceCoordinator
from repro.service.gateway import ServiceGateway
from repro.service.queue import PlanQueue

__all__ = ["PredictionService"]

log = logging.getLogger("repro.service.app")


class PredictionService:
    """An always-on multi-tenant plan execution service.

    Parameters mirror the pieces they configure: ``spool`` and the
    scheduling knobs go to the :class:`PlanQueue`, ``host``/``port``
    to the HTTP gateway, ``fleet_port``/``auth_token`` to the worker
    coordinator. ``housekeep_interval`` is the timer cadence for
    workerless state advancement.

    Usable as a context manager; :meth:`start` returns the bound
    ``(gateway_address, fleet_address)`` pair so callers (tests, the
    CLI with ``--port 0``) learn the OS-picked ports.
    """

    def __init__(
        self,
        spool: str | os.PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        fleet_port: int = 0,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.5,
        min_unit_cells: int = 1,
        target_unit_seconds: float = 1.0,
        max_active: int = 8,
        share_sessions: bool = True,
        auth_token: str | None = None,
        housekeep_interval: float = 1.0,
    ) -> None:
        self.queue = PlanQueue(
            spool,
            lease_timeout=lease_timeout,
            min_unit_cells=min_unit_cells,
            target_unit_seconds=target_unit_seconds,
            max_active=max_active,
        )
        self.coordinator = ServiceCoordinator(
            self.queue,
            host=host,
            port=fleet_port,
            share_sessions=share_sessions,
            poll_interval=poll_interval,
            auth_token=auth_token,
        )
        self.gateway = ServiceGateway(self.queue, host=host, port=port)
        self.housekeep_interval = float(housekeep_interval)
        self.address: tuple[str, int] | None = None
        self.fleet_address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._housekeeper: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> tuple[tuple[str, int], tuple[str, int]]:
        """Bind both ports; returns ``(gateway, fleet)`` addresses."""
        self.fleet_address = self.coordinator.start()
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever,
            daemon=True,
            name="service-gateway-loop",
        )
        self._loop_thread.start()
        try:
            self.address = asyncio.run_coroutine_threadsafe(
                self.gateway.start(), self._loop
            ).result(timeout=10.0)
        except Exception:
            self.close()
            raise
        self._housekeeper = threading.Thread(
            target=self._housekeep_loop,
            daemon=True,
            name="service-housekeeper",
        )
        self._housekeeper.start()
        # /status on an ObsHTTPServer (if the operator enabled one)
        # mirrors the service snapshot, same as the gateway's /status
        set_status_provider(self.queue.status)
        log.info(
            "prediction service up: http %s:%d, fleet %s:%d, spool %s",
            self.address[0],
            self.address[1],
            self.fleet_address[0],
            self.fleet_address[1],
            self.queue.spool,
        )
        return self.address, self.fleet_address

    def _housekeep_loop(self) -> None:
        while not self._stopping.wait(self.housekeep_interval):
            try:
                self.queue.housekeep()
            except Exception:  # keep the timer alive; next tick retries
                log.exception("service housekeeping failed")

    def close(self) -> None:
        """Stop serving and persist the cost snapshot (idempotent)."""
        self._stopping.set()
        clear_status_provider(self.queue.status)
        housekeeper, self._housekeeper = self._housekeeper, None
        if housekeeper is not None:
            housekeeper.join(timeout=5.0)
        loop, self._loop = self._loop, None
        thread, self._loop_thread = self._loop_thread, None
        if loop is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self.gateway.stop(), loop
                ).result(timeout=5.0)
            except Exception:
                log.exception("gateway did not stop cleanly")
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
            loop.close()
        self.coordinator.close()
        self.queue.save_costs()

    def serve_forever(self) -> None:
        """Block until interrupted (the CLI's foreground mode).

        SIGTERM requests the same graceful shutdown as Ctrl-C: finish
        the in-flight HTTP exchanges, persist the cost snapshot, leave
        the spool resumable — what a supervisor (systemd, a container
        runtime) sends before escalating to SIGKILL.
        """
        try:
            signal.signal(
                signal.SIGTERM, lambda *_: self._stopping.set()
            )
        except ValueError:  # not the main thread: close() still works
            pass
        try:
            while not self._stopping.wait(0.5):
                pass
        except KeyboardInterrupt:
            log.info("interrupt: shutting the service down")
        finally:
            self.close()

    def __enter__(self) -> "PredictionService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
