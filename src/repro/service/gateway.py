"""Asyncio HTTP gateway: plan submission, polling, streaming, drains.

The client-facing half of ``repro serve``: a small hand-rolled
HTTP/1.1 server on :func:`asyncio.start_server` (the standard library
has no async HTTP server, and the surface here is six routes — a
framework would be the heavier dependency). One connection carries one
request; every response closes the connection, which sidesteps
keep-alive state exactly the way the fleet protocol's
one-exchange-per-connection rule does.

Routes
------
``POST /plans``
    Submit a plan: a JSON body of either a bare plan payload or
    ``{"plan": ..., "tenant": ..., "priority": ...}``. Replies ``201``
    with the job snapshot, or ``200`` for an idempotent resubmission
    (same tenant + plan → same job id → the existing job). A full
    queue replies ``429`` with ``Retry-After`` derived from the cost
    model's predicted drain time — backpressure that tells the client
    *when* to come back, not just "no".
``GET /plans`` / ``GET /plans/<id>``
    Job snapshots (list and single).
``GET /plans/<id>/records?offset=N``
    The job's results as chunked JSONL, one record per line in the
    store's own serialization, skipping the first ``N`` records. The
    ``X-Repro-Next-Offset`` header names the offset to resume from —
    poll until the plan is ``done`` and the count stops moving, and a
    dropped connection costs re-reading nothing.
``DELETE /plans/<id>``
    Cancel: no further grants; in-flight units finish harmlessly.
``POST /workers/<id>/drain``
    Gracefully retire a worker (the ``drain`` → ``bye`` lifecycle).
``GET /metrics`` / ``GET /healthz`` / ``GET /status``
    The observability trio, mirroring :mod:`repro.obs.http` so one
    port serves both control and monitoring.

Blocking work (store reads, queue locks) runs via
:func:`asyncio.to_thread`; the event loop itself never waits on a
lock held by a coordinator handler thread.
"""

from __future__ import annotations

import asyncio
import json
import logging
from urllib.parse import parse_qs, unquote, urlsplit

from repro.obs import span, telemetry

from repro.service.queue import (
    AdmissionError,
    PlanQueue,
    ServiceError,
    UnknownPlanError,
)

__all__ = ["ServiceGateway"]

log = logging.getLogger("repro.service.gateway")

#: Submission bodies beyond this are refused (a plan payload is KiB;
#: anything larger is not a plan).
MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceGateway:
    """The HTTP face of a :class:`PlanQueue`.

    Start/stop from whatever event loop hosts it (the
    :class:`~repro.service.app.PredictionService` runs one in a
    background thread); ``port=0`` lets the OS pick, read the bound
    address back from :attr:`address`.
    """

    def __init__(
        self,
        queue: PlanQueue,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.queue = queue
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], int(sock[1]))
        log.info("service gateway listening on %s:%d", *self.address)
        return self.address

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(
                    reader
                )
            except _HTTPError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except (asyncio.IncompleteReadError, ValueError, OSError):
                return  # client vanished or sent garbage framing
            try:
                await self._route(writer, method, path, query, body)
            except _HTTPError as exc:
                await self._respond_json(
                    writer,
                    exc.status,
                    {"error": exc.message},
                    headers=exc.headers,
                )
            except Exception as exc:  # a handler bug must not kill serving
                log.exception("gateway handler failed for %s %s", method, path)
                await self._respond_json(
                    writer, 500, {"error": str(exc)}
                )
        except (ConnectionError, OSError):
            pass  # mid-response disconnect; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise ValueError("empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HTTPError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _HTTPError(400, "malformed Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise _HTTPError(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            k: v[-1] for k, v in parse_qs(split.query).items()
        }
        return method.upper(), unquote(split.path), query, body

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict,
        body: bytes,
    ) -> None:
        segments = [s for s in path.split("/") if s]
        if path == "/plans":
            if method == "POST":
                await self._submit(writer, body)
                return
            if method == "GET":
                jobs = await asyncio.to_thread(
                    lambda: [j.snapshot() for j in self.queue.jobs()]
                )
                await self._respond_json(writer, 200, {"plans": jobs})
                return
            raise _HTTPError(405, f"{method} not supported on {path}")
        if len(segments) == 2 and segments[0] == "plans":
            job_id = segments[1]
            if method == "GET":
                snapshot = await asyncio.to_thread(
                    lambda: self._job(job_id).snapshot()
                )
                await self._respond_json(writer, 200, snapshot)
                return
            if method == "DELETE":
                snapshot = await asyncio.to_thread(
                    lambda: self.queue.cancel(job_id).snapshot()
                )
                await self._respond_json(writer, 200, snapshot)
                return
            raise _HTTPError(405, f"{method} not supported on {path}")
        if (
            len(segments) == 3
            and segments[0] == "plans"
            and segments[2] == "records"
        ):
            if method != "GET":
                raise _HTTPError(405, f"{method} not supported on {path}")
            await self._stream_records(writer, segments[1], query)
            return
        if (
            len(segments) == 3
            and segments[0] == "workers"
            and segments[2] == "drain"
        ):
            if method != "POST":
                raise _HTTPError(405, f"{method} not supported on {path}")
            worker = segments[1]
            await asyncio.to_thread(self.queue.drain_worker, worker)
            await self._respond_json(
                writer, 202, {"draining": worker}
            )
            return
        if path == "/metrics" and method == "GET":
            text = await asyncio.to_thread(
                lambda: telemetry().prometheus_text()
            )
            await self._respond(
                writer,
                200,
                text.encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/healthz" and method == "GET":
            await self._respond(
                writer, 200, b"ok\n", "text/plain; charset=utf-8"
            )
            return
        if path == "/status" and method == "GET":
            status = await asyncio.to_thread(self.queue.status)
            await self._respond_json(writer, 200, status)
            return
        raise _HTTPError(404, f"unknown path {path!r}")

    # ------------------------------------------------------------------
    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            raise _HTTPError(
                400, f"submission body is not JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise _HTTPError(400, "submission body must be a JSON object")
        if isinstance(payload.get("plan"), dict):
            plan_payload = payload["plan"]
            tenant = str(payload.get("tenant", "default"))
            priority = payload.get("priority", 1.0)
        else:
            plan_payload, tenant, priority = payload, "default", 1.0
        try:
            priority = float(priority)
        except (TypeError, ValueError) as exc:
            raise _HTTPError(
                400, f"priority must be a number, got {priority!r}"
            ) from exc

        def admit() -> tuple[dict, bool]:
            # the submit span roots the job's trace: the queue's
            # schedule span and the workers' unit spans all parent here
            with span("submit", tenant=tenant) as ev:
                trace = {
                    "trace_id": ev.get("trace_id")
                    or telemetry().new_trace_id(),
                    "parent_span": ev["id"],
                }
                job, created = self.queue.submit(
                    plan_payload,
                    tenant=tenant,
                    priority=priority,
                    trace=trace,
                )
                ev["attrs"]["plan_id"] = job.id
                ev["attrs"]["created"] = created
                return job.snapshot(), created

        try:
            snapshot, created = await asyncio.to_thread(admit)
        except AdmissionError as exc:
            retry = max(int(round(exc.retry_after)), 1)
            raise _HTTPError(
                429,
                str(exc),
                headers={"Retry-After": str(retry)},
            ) from exc
        except ServiceError as exc:
            raise _HTTPError(400, str(exc)) from exc
        await self._respond_json(
            writer, 201 if created else 200, snapshot
        )

    async def _stream_records(
        self, writer: asyncio.StreamWriter, job_id: str, query: dict
    ) -> None:
        try:
            offset = int(query.get("offset", "0"))
        except ValueError as exc:
            raise _HTTPError(
                400, f"offset must be an integer, got {query['offset']!r}"
            ) from exc
        if offset < 0:
            raise _HTTPError(400, "offset must be >= 0")

        def read() -> tuple[list[dict], str]:
            job = self._job(job_id)
            with job.store_lock:
                records = job.store.records()
            return records[offset:], job.status()

        records, status = await asyncio.to_thread(read)
        headers = [
            ("Content-Type", "application/jsonl; charset=utf-8"),
            ("Transfer-Encoding", "chunked"),
            # resume cursor: ask again from here to get only new records
            ("X-Repro-Next-Offset", str(offset + len(records))),
            ("X-Repro-Plan-Status", status),
            ("Connection", "close"),
        ]
        writer.write(_head(200, headers))
        await writer.drain()
        for record in records:
            # the store's own serialization, so a streamed line is
            # byte-identical to the store file's line for that record
            line = (
                json.dumps(record, sort_keys=True) + "\n"
            ).encode()
            writer.write(
                f"{len(line):x}\r\n".encode() + line + b"\r\n"
            )
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    def _job(self, job_id: str):
        try:
            return self.queue.job(job_id)
        except UnknownPlanError as exc:
            raise _HTTPError(404, str(exc)) from exc

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        headers: dict | None = None,
    ) -> None:
        body = (
            json.dumps(payload, sort_keys=True, default=str) + "\n"
        ).encode()
        await self._respond(
            writer, status, body, "application/json", headers
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        ctype: str,
        headers: dict | None = None,
    ) -> None:
        head = [
            ("Content-Type", ctype),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
        ]
        if headers:
            head.extend(headers.items())
        writer.write(_head(status, head) + body)
        await writer.drain()


class _HTTPError(Exception):
    """A routed failure with its HTTP status (and optional headers)."""

    def __init__(
        self, status: int, message: str, headers: dict | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


def _head(status: int, headers) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode()
