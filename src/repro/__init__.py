"""ESS-NS: a parallel Novelty Search metaheuristic for wildfire prediction.

Reproduction of *Strappa, Caymes-Scutari & Bianchini (2022), "A Parallel
Novelty Search Metaheuristic Applied to a Wildfire Prediction System"*
(arXiv:2207.11646), including every substrate the paper depends on:

* :mod:`repro.firelib` — a from-scratch Rothermel/NFFL fire simulator
  (the fireLib equivalent);
* :mod:`repro.core` — scenarios (Table I), Jaccard fitness (Eq. 3),
  novelty score (Eqs. 1–2), archive and bestSet;
* :mod:`repro.ea` — Algorithm 1 (novelty-search GA) plus the GA/DE
  baselines;
* :mod:`repro.parallel` — Master/Worker and island runtimes;
* :mod:`repro.stages` / :mod:`repro.systems` — the DDM-MOS pipeline
  and the four predictive systems (ESS, ESS-NS, ESSIM-EA, ESSIM-DE);
* :mod:`repro.tuning`, :mod:`repro.workloads`, :mod:`repro.analysis`.

Quickstart::

    from repro import ESSNS, grassland_case

    fire = grassland_case(size=60, n_steps=4)
    result = ESSNS(n_workers=4).run(fire, rng=42)
    print(result.mean_quality())
"""

from repro.version import __version__, PAPER
from repro.errors import (
    ReproError,
    ScenarioError,
    TerrainError,
    SimulationError,
    FitnessError,
    NoveltyError,
    EvolutionError,
    ParallelError,
    CalibrationError,
    WorkloadError,
)
from repro.grid import Terrain, IgnitionMap, fire_line
from repro.firelib import FireSimulator, Moisture
from repro.core import (
    ParameterSpace,
    Scenario,
    Individual,
    jaccard_fitness,
    novelty_scores,
    BestSet,
    NoveltyArchive,
    ThresholdArchive,
)
from repro.ea import (
    Termination,
    GAConfig,
    GeneticAlgorithm,
    NoveltyGAConfig,
    NoveltyGA,
    DEConfig,
    DifferentialEvolution,
)
from repro.parallel import (
    SerialEvaluator,
    ProcessPoolEvaluator,
    MasterWorkerEngine,
    IslandModel,
    IslandModelConfig,
)
from repro.stages import aggregate_burned_maps, search_kign, predict
from repro.systems import (
    PredictionStepProblem,
    ESS,
    ESSConfig,
    ESSNS,
    ESSNSConfig,
    ESSIMEA,
    ESSIMEAConfig,
    ESSIMDE,
    ESSIMDEConfig,
    ESSNSIM,
    ESSNSIMConfig,
)
from repro.workloads import (
    ReferenceFire,
    make_reference_fire,
    grassland_case,
    heterogeneous_case,
    dynamic_wind_case,
    river_gap_case,
    DeceptiveLandscape,
)
from repro.analysis import compare_runs, format_run, format_comparison

__all__ = [
    "__version__",
    "PAPER",
    # errors
    "ReproError",
    "ScenarioError",
    "TerrainError",
    "SimulationError",
    "FitnessError",
    "NoveltyError",
    "EvolutionError",
    "ParallelError",
    "CalibrationError",
    "WorkloadError",
    # substrate
    "Terrain",
    "IgnitionMap",
    "fire_line",
    "FireSimulator",
    "Moisture",
    # core
    "ParameterSpace",
    "Scenario",
    "Individual",
    "jaccard_fitness",
    "novelty_scores",
    "BestSet",
    "NoveltyArchive",
    "ThresholdArchive",
    # ea
    "Termination",
    "GAConfig",
    "GeneticAlgorithm",
    "NoveltyGAConfig",
    "NoveltyGA",
    "DEConfig",
    "DifferentialEvolution",
    # parallel
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "MasterWorkerEngine",
    "IslandModel",
    "IslandModelConfig",
    # stages & systems
    "aggregate_burned_maps",
    "search_kign",
    "predict",
    "PredictionStepProblem",
    "ESS",
    "ESSConfig",
    "ESSNS",
    "ESSNSConfig",
    "ESSIMEA",
    "ESSIMEAConfig",
    "ESSIMDE",
    "ESSIMDEConfig",
    "ESSNSIM",
    "ESSNSIMConfig",
    # workloads & analysis
    "ReferenceFire",
    "make_reference_fire",
    "grassland_case",
    "heterogeneous_case",
    "dynamic_wind_case",
    "river_gap_case",
    "DeceptiveLandscape",
    "compare_runs",
    "format_run",
    "format_comparison",
]
