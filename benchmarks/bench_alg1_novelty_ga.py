"""A1 — Algorithm 1: per-phase costs of the novelty-based GA.

Times each phase of one Algorithm 1 generation in isolation (offspring
generation, fitness evaluation, novelty computation, archive update,
novelty-elitist replacement, bestSet update) and sweeps k for the
ρ(x) computation — the one knob Eq. 1 adds over a classical GA.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.archive import BestSet, NoveltyArchive
from repro.core.individual import Individual, fitness_vector
from repro.core.novelty import novelty_scores
from repro.ea.ga import GAConfig, generate_offspring

from _report import report, run_once

POP = 50


@pytest.fixture(scope="module")
def population(space):
    rng = np.random.default_rng(0)
    genomes = space.sample(POP, 1)
    return [
        Individual(genome=g, fitness=float(f), novelty=float(n))
        for g, f, n in zip(genomes, rng.random(POP), rng.random(POP))
    ]


def test_bench_generate_offspring(benchmark, population, space):
    """Algorithm 1 line 7 (selection + crossover + mutation + clip)."""
    scores = np.asarray([ind.novelty for ind in population])
    config = GAConfig(population_size=POP)
    rng = np.random.default_rng(2)
    off = benchmark(
        generate_offspring, population, scores, POP, config, space, rng, 1
    )
    assert len(off) == POP


def test_bench_novelty_scores(benchmark, population):
    """Algorithm 1 lines 12–14 over population ∪ offspring ∪ archive."""
    fits = fitness_vector(population)
    reference = np.concatenate([fits, np.random.default_rng(3).random(100)])
    rho = benchmark(novelty_scores, fits, reference, 15)
    assert rho.shape == (POP,)


def test_bench_archive_update(benchmark, population):
    """Algorithm 1 line 15 (novelty-based replacement)."""

    def update():
        arch = NoveltyArchive(capacity=100)
        for _ in range(10):
            arch.update(population)
        return arch

    arch = benchmark(update)
    assert len(arch) == 100


def test_bench_best_set_update(benchmark, population):
    """Algorithm 1 line 17 (fitness-sorted merge with dedupe)."""

    def update():
        bs = BestSet(capacity=25)
        for _ in range(10):
            bs.update(population)
        return bs

    bs = benchmark(update)
    assert len(bs) == 25


def test_alg1_k_sensitivity_report(benchmark, space):
    def _body():
        """ρ(x) cost and magnitude as k grows (Eq. 1's parameter)."""
        import time

        rng = np.random.default_rng(5)
        fits = rng.random(200)
        rows = []
        for k in (1, 5, 15, 50, 199):
            t0 = time.perf_counter()
            for _ in range(50):
                rho = novelty_scores(fits, fits, k=k)
            elapsed = (time.perf_counter() - t0) / 50
            rows.append([k, round(float(rho.mean()), 4), round(elapsed * 1e6, 1)])
        report(
            "A1_k_sensitivity",
            format_table(["k", "mean ρ(x)", "µs per call (n=200)"], rows),
        )
        # ρ is monotone non-decreasing in k (average of k smallest distances)
        means = [r[1] for r in rows]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
    run_once(benchmark, _body)

