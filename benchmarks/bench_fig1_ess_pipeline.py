"""F1 — Fig. 1: the ESS pipeline (OS → SS → CS → PS).

Runs the full ESS prediction process on the standard case and reports
the per-step table plus the stage-time breakdown — the executable form
of the Fig. 1 architecture. The benchmark measures one complete
prediction step.
"""

from __future__ import annotations

from repro.analysis.reporting import format_run, format_table
from repro.ea.ga import GAConfig
from repro.systems import ESS, ESSConfig

from _report import report, run_once

_CONFIG = ESSConfig(ga=GAConfig(population_size=16), max_generations=6)


def test_fig1_full_pipeline_report(benchmark, bench_fire):
    def _body():
        """Regenerate the Fig. 1 data flow end to end and print it."""
        run = ESS(_CONFIG).run(bench_fire, rng=42)
        stage = run.stage_timings()
        breakdown = format_table(
            ["stage", "seconds", "fraction"],
            [
                [name, round(stage.seconds[name], 3), round(frac, 3)]
                for name, frac in stage.fractions().items()
            ],
        )
        report("F1_ess_pipeline", format_run(run) + "\n\nstage breakdown:\n" + breakdown)
        assert len(run.steps) == bench_fire.n_steps
        assert not run.steps[0].has_prediction
        assert all(s.has_prediction for s in run.steps[1:])
        # the OS (simulations) dominates, as the paper's parallel design assumes
        assert stage.fractions()["os"] > 0.5


    run_once(benchmark, _body)

def test_bench_ess_single_step(benchmark, bench_fire):
    """Wall-clock of one full ESS prediction step."""

    def one_step():
        import numpy as np

        from repro.parallel.executor import SerialEvaluator
        from repro.stages.calibration import search_kign
        from repro.stages.statistical import aggregate_burned_maps
        from repro.systems.problem import PredictionStepProblem
        from repro.ea.ga import GeneticAlgorithm
        from repro.ea.termination import Termination
        from repro.core.individual import genomes_matrix

        problem = PredictionStepProblem(
            bench_fire.terrain,
            bench_fire.start_mask(1),
            bench_fire.real_mask(1),
            bench_fire.step_horizon(1),
        )
        result = GeneticAlgorithm(_CONFIG.ga).run(
            SerialEvaluator(problem),
            problem.space,
            Termination(max_generations=3),
            rng=0,
        )
        maps = problem.burned_maps(genomes_matrix(result.population))
        pm = aggregate_burned_maps(maps)
        return search_kign(
            pm, bench_fire.real_mask(1), pre_burned=bench_fire.start_mask(1)
        )

    cal = benchmark.pedantic(one_step, rounds=3, iterations=1)
    assert 0.0 <= cal.fitness <= 1.0
