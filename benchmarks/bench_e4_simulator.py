"""E4 — the fireLib-equivalent simulator substrate.

Throughput of the two kernels every Worker call is made of: the
vectorised Rothermel spread computation and the min-travel-time
propagation, swept over grid sizes and fuel models.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.firelib.moisture import Moisture
from repro.firelib.rothermel import FuelBed, spread
from repro.firelib.simulator import FireSimulator
from repro.grid.terrain import Terrain

from _report import report, run_once

DRY = Moisture.from_percent(5, 6, 8, 50)


@pytest.fixture(scope="module")
def windy_scenario(space):
    from repro.core.scenario import Scenario

    return Scenario(
        model=1, wind_speed=12.0, wind_dir=90.0, m1=5, m10=6, m100=8,
        mherb=50, slope=10.0, aspect=270.0,
    )


def test_e4_grid_size_sweep_report(benchmark, windy_scenario):
    def _body():
        """Simulation wall-clock vs grid size (the Worker's unit of work)."""
        rows = []
        for size in (50, 100, 150):
            terrain = Terrain.uniform(size, size, cell_size=30.0)
            sim = FireSimulator(terrain)
            t0 = time.perf_counter()
            reps = 3
            for _ in range(reps):
                res = sim.simulate(
                    windy_scenario, [(size // 2, size // 4)], horizon=45.0
                )
            elapsed = (time.perf_counter() - t0) / reps
            rows.append(
                [
                    f"{size}x{size}",
                    size * size,
                    round(elapsed * 1e3, 2),
                    int(res.burned().sum()),
                ]
            )
        report(
            "E4_grid_sweep",
            format_table(["grid", "cells", "ms/simulation", "burned cells"], rows),
        )
        # Near-linear scaling in cells: 9× cells should cost well under 30×.
        assert rows[2][2] < rows[0][2] * 30


    run_once(benchmark, _body)

def test_e4_fuel_model_sweep_report(benchmark):
    def _body():
        """No-wind spread rate of all 13 NFFL models (catalog sanity)."""
        rows = []
        for code in range(1, 14):
            bed = FuelBed.for_model(code)
            rows.append(
                [code, bed.model.name, round(bed.no_wind_rate(DRY), 3),
                 round(bed.sigma, 0)]
            )
        report(
            "E4_fuel_models",
            format_table(["model", "name", "R0 ft/min (dry)", "sigma 1/ft"], rows),
        )
        rates = {r[0]: r[2] for r in rows}
        assert rates[1] > rates[8]  # grass outruns closed timber litter


    run_once(benchmark, _body)

def test_bench_rothermel_kernel(benchmark):
    """The vectorised spread computation over a 100×100 slope raster."""
    slope = np.random.default_rng(0).uniform(0, 40, (100, 100))
    aspect = np.random.default_rng(1).uniform(0, 360, (100, 100))
    result = benchmark(spread, 4, DRY, 10.0, 45.0, slope, aspect)
    assert np.asarray(result.ros_max).shape == (100, 100)


def test_bench_propagation_100(benchmark, windy_scenario):
    """One complete 100×100 simulation (spread + Dijkstra)."""
    terrain = Terrain.uniform(100, 100, cell_size=30.0)
    sim = FireSimulator(terrain)
    res = benchmark(sim.simulate, windy_scenario, [(50, 25)], 45.0)
    assert res.burned().sum() > 10


def test_bench_propagation_16_neighbors(benchmark, windy_scenario):
    """The finer 16-neighbour stencil (~2× edges)."""
    terrain = Terrain.uniform(100, 100, cell_size=30.0)
    sim = FireSimulator(terrain, n_neighbors=16)
    res = benchmark(sim.simulate, windy_scenario, [(50, 25)], 45.0)
    assert res.burned().sum() > 10
