"""E1 — the paper's hypothesis: ESS-NS quality vs the lineage.

Runs the four systems on the static and dynamic cases with a matched
per-step simulation budget and reports quality-per-step — the
experiment §III sets up ("comparable or better results in quality with
respect to existing methods"). Also verifies the comparison mechanics
the Monitor relies on.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import compare_runs
from repro.analysis.reporting import format_comparison
from repro.ea.de import DEConfig
from repro.ea.ga import GAConfig
from repro.ea.nsga import NoveltyGAConfig
from repro.parallel.islands import IslandModelConfig
from repro.systems import (
    ESS,
    ESSIMDE,
    ESSIMEA,
    ESSNS,
    ESSConfig,
    ESSIMDEConfig,
    ESSIMEAConfig,
    ESSNSConfig,
)

from _report import report, run_once

_GENS = 6
_ISLANDS = IslandModelConfig(n_islands=2, migration_interval=2, n_migrants=2)


def _systems():
    return [
        ESS(ESSConfig(ga=GAConfig(population_size=16), max_generations=_GENS)),
        ESSNS(
            ESSNSConfig(
                nsga=NoveltyGAConfig(
                    population_size=16,
                    k_neighbors=8,
                    best_set_capacity=12,
                    archive_capacity=48,
                ),
                max_generations=_GENS,
            )
        ),
        ESSIMEA(
            ESSIMEAConfig(
                ga=GAConfig(population_size=8),
                islands=_ISLANDS,
                max_generations=_GENS,
            )
        ),
        ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=8),
                islands=_ISLANDS,
                max_generations=_GENS,
                tuning="both",
            )
        ),
    ]


def _compare_on(fire, seeds):
    mean_by_system: dict[str, list[float]] = {}
    last = None
    for seed in seeds:
        runs = [system.run(fire, rng=3000 + seed) for system in _systems()]
        last = compare_runs(runs)
        for run in runs:
            mean_by_system.setdefault(run.system, []).append(run.mean_quality())
    return last, {k: float(np.mean(v)) for k, v in mean_by_system.items()}


def test_e1_static_case(benchmark, bench_fire):
    def _body():
        """Static conditions: every system should be competitive."""
        cmp, means = _compare_on(bench_fire, seeds=[0, 1])
        lines = [format_comparison(cmp), "", "mean quality over seeds:"]
        lines += [f"  {k:16s} {v:.4f}" for k, v in means.items()]
        report("E1_static_quality", "\n".join(lines))
        # hypothesis check: ESS-NS comparable or better than ESS
        assert means["ESS-NS"] >= 0.8 * means["ESS"]


    run_once(benchmark, _body)

def test_e1_dynamic_case(benchmark, bench_dynamic_fire):
    def _body():
        """Dynamic conditions (§IV): the stressor for converged populations."""
        cmp, means = _compare_on(bench_dynamic_fire, seeds=[0])
        lines = [format_comparison(cmp), "", "mean quality over seeds:"]
        lines += [f"  {k:16s} {v:.4f}" for k, v in means.items()]
        report("E1_dynamic_quality", "\n".join(lines))
        for v in means.values():
            assert 0.0 <= v <= 1.0


    run_once(benchmark, _body)

def test_bench_essns_full_run(benchmark, bench_fire):
    """Wall-clock of a complete ESS-NS predictive process (all steps)."""
    system = _systems()[1]
    run = benchmark.pedantic(
        lambda: system.run(bench_fire, rng=5), rounds=1, iterations=1
    )
    assert len(run.steps) == bench_fire.n_steps
