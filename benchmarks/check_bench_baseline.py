"""Diff freshly measured bench rows against a committed baseline.

CI copies the repository's BENCH report (``BENCH_executors.json``,
``BENCH_engine.json``) aside *before* the smoke benchmarks run (they
merge sections into the committed path in place), reruns the smoke
bodies, and then calls this script to print how the metrics moved
against what the repository claims:

    python benchmarks/check_bench_baseline.py \
        --baseline baseline.json \
        --fresh benchmarks/reports/BENCH_executors.json \
        --section few_big_groups_smoke

Rows are matched by the ``--key`` label: ``mode`` by default
(``group leases`` / ``unit leases`` / ``cost-aware units``), or e.g.
``backend`` for the engine report's ``backends_smoke`` section.
Wall-clock metrics (``seconds``, ``idle_seconds``, ``evals_per_sec``,
``speedup``) vary with machine load, so the script is a trajectory
printer, not a gate: it always exits 0 unless the files are unreadable
or the section/rows are missing entirely — *structural* drift (a row
disappearing from the committed report) is the one thing it fails on.
Counter metrics (``round_trips``, ``lease_requests``, ``piggybacked``,
``steals``) are deterministic enough that a reviewer can read a
regression straight off the deltas.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Metrics worth diffing, in print order: (key, format, is_timing).
#: Rows missing a key simply skip it, so executor and engine reports
#: share one table.
METRICS = (
    ("seconds", "{:.2f}", True),
    ("busy_seconds", "{:.2f}", True),
    ("idle_seconds", "{:.2f}", True),
    ("evals_per_sec", "{:.0f}", True),
    ("speedup", "{:.2f}", True),
    ("round_trips", "{:d}", False),
    ("lease_requests", "{:d}", False),
    ("piggybacked", "{:d}", False),
    ("steals", "{:d}", False),
)


def load_rows(path: str, section: str, key: str = "mode") -> dict[str, dict]:
    """``row[key] -> row`` for one section of a BENCH report file."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read {path}: {exc}") from exc
    payload = doc.get("sections", {}).get(section)
    if not isinstance(payload, dict) or not payload.get("rows"):
        raise SystemExit(
            f"{path} has no rows under section {section!r} "
            f"(sections: {sorted(doc.get('sections', {}))})"
        )
    rows = {row[key]: row for row in payload["rows"] if key in row}
    if not rows:
        raise SystemExit(
            f"{path} section {section!r} has no rows labelled by "
            f"{key!r} (row keys: {sorted(payload['rows'][0])})"
        )
    return rows


def diff_rows(baseline: dict[str, dict], fresh: dict[str, dict]) -> list[str]:
    lines: list[str] = []
    missing = sorted(set(baseline) - set(fresh))
    added = sorted(set(fresh) - set(baseline))
    if missing:
        lines.append(f"modes missing from fresh run: {missing}")
    if added:
        lines.append(f"modes not in baseline: {added}")
    for mode in (m for m in baseline if m in fresh):
        lines.append(f"{mode}:")
        for key, fmt, timing in METRICS:
            if key not in baseline[mode] and key not in fresh[mode]:
                continue
            old = baseline[mode].get(key)
            new = fresh[mode].get(key)
            if old is None or new is None:
                lines.append(
                    f"  {key:<16} baseline={old!r} fresh={new!r} "
                    "(metric added/removed)"
                )
                continue
            if fmt == "{:d}":
                old, new = int(old), int(new)
            shown_old, shown_new = fmt.format(old), fmt.format(new)
            delta = new - old
            sign = "+" if delta >= 0 else ""
            note = " (timing: machine-dependent)" if timing else ""
            lines.append(
                f"  {key:<16} {shown_old:>9} -> {shown_new:>9} "
                f"({sign}{fmt.format(delta) if fmt != '{:d}' else delta})"
                f"{note}"
            )
    return lines


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline", required=True, help="committed BENCH report copy"
    )
    ap.add_argument(
        "--fresh", required=True, help="freshly regenerated BENCH report"
    )
    ap.add_argument(
        "--section",
        default="few_big_groups_smoke",
        help="section to diff (default: few_big_groups_smoke)",
    )
    ap.add_argument(
        "--key",
        default="mode",
        help="row-identity label within the section (default: mode; "
        "use 'backend' for the engine report)",
    )
    args = ap.parse_args(argv)
    baseline = load_rows(args.baseline, args.section, args.key)
    fresh = load_rows(args.fresh, args.section, args.key)
    print(
        f"bench baseline diff — section {args.section!r} by {args.key!r}"
    )
    for line in diff_rows(baseline, fresh):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
