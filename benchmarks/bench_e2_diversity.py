"""E2 — premature convergence (§II-B) and its remedies.

Tracks genotypic diversity and fitness IQR per generation for the three
engines on a real prediction-step problem:

* the GA and (especially) DE collapse — the failure §II-B documents;
* NS sustains diversity by construction;
* the restart/IQR tuning partially recovers DE inside the island model.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.ea.de import DEConfig, DifferentialEvolution
from repro.ea.ga import GAConfig, GeneticAlgorithm
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.parallel.executor import SerialEvaluator
from repro.parallel.islands import IslandModel, IslandModelConfig
from repro.tuning.restart import PopulationRestart

from _report import report, run_once

_GENS = 15
_POP = 20


def _histories(problem, space):
    term = Termination(max_generations=_GENS)
    ev = SerialEvaluator(problem)
    ga = GeneticAlgorithm(GAConfig(population_size=_POP)).run(
        ev, space, term, rng=11
    )
    de = DifferentialEvolution(DEConfig(population_size=_POP)).run(
        ev, space, term, rng=11
    )
    ns = NoveltyGA(
        NoveltyGAConfig(population_size=_POP, k_neighbors=8)
    ).run(ev, space, term, rng=11)
    return {"GA": ga.history, "DE": de.history, "NS-GA": ns.history}


def test_e2_diversity_collapse_report(benchmark, bench_problem, space):
    def _body():
        """Per-generation genotypic + behavioural diversity of the engines.

        Eq. 2 defines behaviour as fitness, so the diversity NS directly
        reinforces is *behavioural* (visible as fitness IQR); genotypic
        spread is reported alongside. Note DE's high genotypic spread
        here is stagnation, not exploration — its greedy selection
        rejects most trials, freezing a near-random population (its
        behavioural IQR collapses, the §II-B failure signature).
        """
        hist = _histories(bench_problem, space)
        rows = []
        for gen_idx in (0, 4, 9, 14):
            row = [gen_idx + 1]
            for name in ("GA", "DE", "NS-GA"):
                div = hist[name].series("genotypic_diversity")[gen_idx]
                iqr = hist[name].series("fitness_iqr")[gen_idx]
                row.append(f"{div:.3f}/{iqr:.3f}")
            rows.append(row)
        table = format_table(
            ["generation", "GA geno/IQR", "DE geno/IQR", "NS-GA geno/IQR"], rows
        )
        finals = {
            name: h.series("genotypic_diversity")[-1] for name, h in hist.items()
        }
        iqrs = {name: h.series("fitness_iqr")[-1] for name, h in hist.items()}
        summary = "\n".join(
            f"  {name:6s} final genotypic {finals[name]:.4f}, final fitness IQR {iqrs[name]:.4f}"
            for name in finals
        )
        report("E2_diversity", table + "\n\nfinal generation:\n" + summary)
        # The paper's claim in this behaviour space: NS sustains more
        # behavioural diversity than both fitness-guided engines, and
        # does not collapse genotypically below the converging GA.
        assert iqrs["NS-GA"] > iqrs["GA"]
        assert iqrs["NS-GA"] > iqrs["DE"]
        assert finals["NS-GA"] > finals["GA"]


    run_once(benchmark, _body)

def test_e2_restart_tuning_report(benchmark, bench_problem, space):
    def _body():
        """Plain island DE vs restart-tuned island DE (the §II-B remedy)."""
        term = Termination(max_generations=12)

        def run(intervention):
            model = IslandModel(
                lambda: DifferentialEvolution(DEConfig(population_size=10)),
                IslandModelConfig(n_islands=2, migration_interval=2),
            )
            return model.run(
                SerialEvaluator(bench_problem), space, term, rng=4,
                intervention=intervention,
            )

        plain = run(None)
        restart = PopulationRestart(space, patience=1, rng=0)
        tuned = run(restart)

        def final_div(res):
            return float(
                np.mean([h.series("genotypic_diversity")[-1] for h in res.histories])
            )

        rows = [
            ["ESSIM-DE (no tuning)", round(plain.best.fitness, 4), round(final_div(plain), 4), 0],
            [
                "ESSIM-DE + restart",
                round(tuned.best.fitness, 4),
                round(final_div(tuned), 4),
                restart.restarts_fired,
            ],
        ]
        report(
            "E2_restart_tuning",
            format_table(
                ["configuration", "best fitness", "final diversity", "restarts fired"],
                rows,
            ),
        )
        assert restart.restarts_fired >= 1


    run_once(benchmark, _body)

def test_bench_diversity_measurement(benchmark, space):
    """Cost of the per-generation diversity metric itself."""
    from repro.analysis.diversity import genotypic_diversity

    genomes = space.sample(_POP, 0)
    out = benchmark(genotypic_diversity, genomes, space)
    assert out > 0
