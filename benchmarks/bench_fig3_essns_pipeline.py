"""F3 — Fig. 3: the ESS-NS pipeline (the paper's proposal).

Runs ESS-NS end to end on the standard case and reports the per-step
table, then quantifies the two deltas Fig. 3 highlights vs Fig. 1:

1. the NS-based GA adds a novelty-evaluation pass per generation — its
   cost is measured against the fitness pass;
2. the OS output is the bestSet instead of the final population — the
   report compares the genotypic diversity of both solution sets.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diversity import genotypic_diversity
from repro.analysis.reporting import format_run, format_table
from repro.core.individual import genomes_matrix
from repro.ea.ga import GAConfig, GeneticAlgorithm
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.parallel.executor import SerialEvaluator
from repro.systems import ESSNS, ESSNSConfig

from _report import report, run_once

_NSGA = NoveltyGAConfig(
    population_size=16, k_neighbors=8, best_set_capacity=12, archive_capacity=48
)
_CONFIG = ESSNSConfig(nsga=_NSGA, max_generations=6)


def test_fig3_full_pipeline_report(benchmark, bench_fire, space):
    def _body():
        """Regenerate the Fig. 3 data flow end to end and print it."""
        run = ESSNS(_CONFIG).run(bench_fire, rng=42)

        # Delta 2: bestSet vs final population diversity, same budget.
        problem_term = Termination(max_generations=6)
        from repro.systems.problem import PredictionStepProblem

        problem = PredictionStepProblem(
            bench_fire.terrain,
            bench_fire.start_mask(1),
            bench_fire.real_mask(1),
            bench_fire.step_horizon(1),
        )
        ns = NoveltyGA(_NSGA).run(
            SerialEvaluator(problem), space, problem_term, rng=42
        )
        ga = GeneticAlgorithm(GAConfig(population_size=16)).run(
            SerialEvaluator(problem), space, problem_term, rng=42
        )
        div_rows = [
            ["ESS final population (Fig. 1 output)",
             round(genotypic_diversity(genomes_matrix(ga.population), space), 4)],
            ["ESS-NS bestSet (Fig. 3 output)",
             round(genotypic_diversity(ns.best_genomes(), space), 4)],
            ["ESS-NS final population",
             round(genotypic_diversity(genomes_matrix(ns.population), space), 4)],
        ]
        report(
            "F3_essns_pipeline",
            format_run(run)
            + "\n\nsolution-set genotypic diversity:\n"
            + format_table(["solution set", "diversity"], div_rows),
        )
        assert len(run.steps) == bench_fire.n_steps
        assert all(1 <= s.n_solutions <= _NSGA.best_set_capacity for s in run.steps)


    run_once(benchmark, _body)

def test_bench_essns_single_step(benchmark, bench_fire):
    """Wall-clock of one full ESS-NS prediction step (compare F1)."""

    def one_step():
        from repro.core.individual import genomes_matrix as gm
        from repro.stages.calibration import search_kign
        from repro.stages.statistical import aggregate_burned_maps
        from repro.systems.problem import PredictionStepProblem

        problem = PredictionStepProblem(
            bench_fire.terrain,
            bench_fire.start_mask(1),
            bench_fire.real_mask(1),
            bench_fire.step_horizon(1),
        )
        result = NoveltyGA(_NSGA).run(
            SerialEvaluator(problem),
            problem.space,
            Termination(max_generations=3),
            rng=0,
        )
        maps = problem.burned_maps(result.best_genomes())
        pm = aggregate_burned_maps(maps)
        return search_kign(
            pm, bench_fire.real_mask(1), pre_burned=bench_fire.start_mask(1)
        )

    cal = benchmark.pedantic(one_step, rounds=3, iterations=1)
    assert 0.0 <= cal.fitness <= 1.0
