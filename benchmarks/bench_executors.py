"""Executor comparison: inline vs process shards vs a loopback fleet.

Measures the wall-clock of the same experiment plan under the three
:class:`~repro.distributed.executors.GroupExecutor` policies and
verifies their stores agree bitwise (wall-clock timing fields
excluded). The multi-process executors parallelise over independent
``(case, backend)`` groups, so their advantage grows with the number of
groups and the per-group cost; the fleet additionally pays the TCP
lease/drain round-trips, which this bench shows to be negligible
against real simulation work.

``few_big_groups_rows`` measures the redesigns this bench exists to
justify: on a one-case/many-seeds plan (a single ``(case, backend)``
group) it runs the same fleet three times — whole-group leases
(``min_unit_cells=0``, the pre-WorkUnit behaviour), cell-level halving
leases with work stealing, and cost-aware scheduling (predictive
packing, capacity-sized leases, piggybacked granting) — and reports
each worker's busy time against the run's wall-clock (how much fleet
capacity sat idle) plus the coordinator's per-worker round-trip count
(how much of the run was spent talking instead of working).

``smoke_executors`` / ``smoke_few_big_groups`` run the same
comparisons at tiny sizes with no timing assertions — the
distributed-smoke CI job calls them.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path

from repro.distributed import (
    FleetExecutor,
    InlineExecutor,
    ProcessShardExecutor,
    run_worker,
)
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
)
from repro.experiments.store import parity_view, record_key


def _plan(
    size: int, steps: int, population: int, generations: int, seeds
) -> ExperimentPlan:
    return ExperimentPlan(
        name="bench-executors",
        systems=("ess", "ess-ns"),
        cases=(
            CaseSpec("grassland", size=size, steps=steps),
            CaseSpec("river_gap", size=size, steps=steps),
        ),
        seeds=tuple(seeds),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=population,
            generations=generations,
            session_cache_size=4096,
        ),
    )


def _fingerprint(store: ResultsStore) -> list[dict]:
    """Sorted records in the shared scheduling-free parity view."""
    return [
        parity_view(r) for r in sorted(store.records(), key=record_key)
    ]


def _run_fleet(plan: ExperimentPlan, store: ResultsStore, workdir: Path):
    """Loopback coordinator + two worker processes."""
    ctx = multiprocessing.get_context("fork")
    procs: list = []

    def on_bound(address):
        for i in range(2):
            proc = ctx.Process(
                target=run_worker,
                args=(address,),
                kwargs=dict(
                    store_path=str(workdir / f"fleet-worker{i}.jsonl"),
                    worker_id=f"bench-w{i}",
                ),
            )
            proc.start()
            procs.append(proc)

    executor = FleetExecutor(
        lease_timeout=60.0, poll_interval=0.05, timeout=3600.0,
        on_bound=on_bound,
    )
    try:
        ExperimentRunner(store=store).run(plan, executor=executor)
    finally:
        for proc in procs:
            proc.join(timeout=60)
            if proc.is_alive():  # pragma: no cover - bench hygiene
                proc.kill()


def executor_rows(
    size: int = 28,
    steps: int = 2,
    population: int = 16,
    generations: int = 3,
    seeds=(0, 1),
) -> list[dict]:
    """Time the three executors on one plan; assert store parity."""
    plan = _plan(size, steps, population, generations, seeds)
    rows: list[dict] = []
    fingerprints: list = []
    with tempfile.TemporaryDirectory(prefix="bench-executors-") as tmp:
        workdir = Path(tmp)
        for label, run in (
            (
                "inline",
                lambda store: ExperimentRunner(store=store).run(
                    plan, executor=InlineExecutor()
                ),
            ),
            (
                "process x2",
                lambda store: ExperimentRunner(store=store).run(
                    plan, executor=ProcessShardExecutor(2)
                ),
            ),
            (
                "fleet x2 (loopback)",
                lambda store: _run_fleet(plan, store, workdir),
            ),
        ):
            store = ResultsStore(
                workdir / f"{label.split()[0]}.jsonl"
            )
            start = time.perf_counter()
            run(store)
            elapsed = time.perf_counter() - start
            fingerprints.append(_fingerprint(store))
            rows.append(
                {
                    "executor": label,
                    "seconds": elapsed,
                    "records": len(store.records()),
                }
            )
        reference = fingerprints[0]
        for label_rows, fingerprint in zip(rows, fingerprints):
            assert fingerprint == reference, (
                f"{label_rows['executor']} diverged from inline"
            )
    baseline = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = baseline / row["seconds"]
    return rows


def executor_table(rows: list[dict]) -> str:
    header = f"{'executor':<22}{'records':>8}{'seconds':>10}{'speedup':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['executor']:<22}{row['records']:>8}"
            f"{row['seconds']:>10.2f}{row['speedup']:>9.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Few-big-groups mode — idle-worker time before/after cell leasing.
# ----------------------------------------------------------------------
def _summary_worker(address, store_path, worker_id, queue) -> None:
    queue.put(run_worker(address, store_path=store_path, worker_id=worker_id))


def _run_fleet_collecting(
    plan: ExperimentPlan,
    store: ResultsStore,
    workdir: Path,
    workers: int,
    min_unit_cells: int,
    label: str,
    scheduling: str = "halving",
) -> tuple[float, list[dict], FleetExecutor]:
    """One fleet run; returns (wall seconds, worker summaries, executor)."""
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    procs: list = []

    def on_bound(address):
        for i in range(workers):
            proc = ctx.Process(
                target=_summary_worker,
                args=(
                    address,
                    str(workdir / f"{label}-w{i}.jsonl"),
                    f"{label}-w{i}",
                    queue,
                ),
            )
            proc.start()
            procs.append(proc)

    executor = FleetExecutor(
        lease_timeout=60.0,
        poll_interval=0.05,
        timeout=3600.0,
        min_unit_cells=min_unit_cells,
        scheduling=scheduling,
        on_bound=on_bound,
    )
    start = time.perf_counter()
    try:
        ExperimentRunner(store=store).run(plan, executor=executor)
    finally:
        for proc in procs:
            proc.join(timeout=60)
            if proc.is_alive():  # pragma: no cover - bench hygiene
                proc.kill()
    wall = time.perf_counter() - start
    summaries = [queue.get(timeout=10) for _ in procs]
    return wall, summaries, executor


def few_big_groups_rows(
    size: int = 28,
    steps: int = 2,
    population: int = 16,
    generations: int = 3,
    n_seeds: int = 6,
    workers: int = 3,
) -> list[dict]:
    """Idle-worker time on a one-group plan, across scheduling modes.

    The plan has a single ``(case, backend)`` group (one case, many
    seeds), so whole-group leasing pins all work on one worker while
    the rest of the fleet idles; cell-level halving leasing spreads it
    by splitting the unit for every asker; cost-aware scheduling packs
    it predictively, sizes leases to measured worker throughput and
    piggybacks granting on the complete reports (fewer round-trips for
    the same work). Rows report per-mode wall clock, summed worker
    busy time, the implied idle time (``workers * wall - busy``) and
    the coordinator's round-trip accounting; all stores must agree
    bitwise in the parity view.
    """
    plan = ExperimentPlan(
        name="bench-few-big-groups",
        systems=("ess", "ess-ns"),
        cases=(CaseSpec("grassland", size=size, steps=steps),),
        seeds=tuple(range(n_seeds)),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=population,
            generations=generations,
            session_cache_size=4096,
        ),
    )
    rows: list[dict] = []
    fingerprints: list = []
    with tempfile.TemporaryDirectory(prefix="bench-few-big-") as tmp:
        workdir = Path(tmp)
        for label, min_unit_cells, scheduling in (
            ("group leases", 0, "halving"),
            ("unit leases", 1, "halving"),
            ("cost-aware units", 1, "cost"),
        ):
            store = ResultsStore(
                workdir / f"{label.split()[0]}.jsonl"
            )
            wall, summaries, executor = _run_fleet_collecting(
                plan,
                store,
                workdir,
                workers,
                min_unit_cells,
                label.split()[0],
                scheduling,
            )
            busy = sum(s["busy_seconds"] for s in summaries)
            stats = executor.worker_stats.values()
            fingerprints.append(_fingerprint(store))
            rows.append(
                {
                    "mode": label,
                    "scheduling": scheduling,
                    "workers": workers,
                    "seconds": wall,
                    "busy_seconds": busy,
                    "idle_seconds": max(workers * wall - busy, 0.0),
                    "units_per_worker": sorted(
                        s["units"] for s in summaries
                    ),
                    "steals": executor.steals,
                    # wire-exchange accounting: total worker requests
                    # and how many of them were pure lease asks — the
                    # overhead piggybacked granting exists to cut
                    "round_trips": sum(s["round_trips"] for s in stats),
                    "lease_requests": sum(
                        s["lease_requests"] for s in stats
                    ),
                    "piggybacked": sum(s["piggybacked"] for s in stats),
                    "records": len(store.records()),
                }
            )
        for row, fingerprint in zip(rows[1:], fingerprints[1:]):
            assert fingerprint == fingerprints[0], (
                f"{row['mode']} diverged from group leases"
            )
    return rows


def few_big_groups_table(rows: list[dict]) -> str:
    header = (
        f"{'mode':<18}{'records':>8}{'seconds':>10}{'busy':>8}"
        f"{'idle':>8}{'steals':>8}{'trips':>7}  units/worker"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['mode']:<18}{row['records']:>8}{row['seconds']:>10.2f}"
            f"{row['busy_seconds']:>8.2f}{row['idle_seconds']:>8.2f}"
            f"{row['steals']:>8}{row['round_trips']:>7}  "
            f"{row['units_per_worker']}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Smoke mode — tiny grid, parity only (the distributed-smoke CI job).
# ----------------------------------------------------------------------
def smoke_executors() -> list[dict]:
    """All three executors agree bitwise on a tiny 2-group plan."""
    from _report import bench_json

    workload = dict(size=20, steps=2, population=8, generations=2, seeds=[0])
    rows = executor_rows(
        size=20, steps=2, population=8, generations=2, seeds=(0,)
    )
    bench_json(
        "executors", "executors_smoke", {"workload": workload, "rows": rows}
    )
    return rows


def smoke_few_big_groups() -> list[dict]:
    """All scheduling modes agree bitwise on a tiny one-group plan.

    Also asserts the round-trip claim that is timing-free and thus
    CI-safe: cost scheduling's piggybacked granting must finish the
    same plan in strictly fewer worker round-trips than halving unit
    leases, with at least one lease actually piggybacked.
    """
    from _report import bench_json

    workload = dict(
        size=20, steps=2, population=8, generations=2, n_seeds=4, workers=2
    )
    rows = few_big_groups_rows(
        size=20, steps=2, population=8, generations=2, n_seeds=4, workers=2
    )
    halving = next(r for r in rows if r["mode"] == "unit leases")
    cost = next(r for r in rows if r["mode"] == "cost-aware units")
    assert cost["round_trips"] < halving["round_trips"], (
        f"piggybacked granting should cut round-trips: "
        f"cost {cost['round_trips']} vs halving {halving['round_trips']}"
    )
    assert cost["piggybacked"] > 0, "no lease was piggybacked"
    bench_json(
        "executors",
        "few_big_groups_smoke",
        {"workload": workload, "rows": rows},
    )
    return rows


# ----------------------------------------------------------------------
# Full benchmark (pytest-benchmark harness)
# ----------------------------------------------------------------------
def test_executor_comparison_report(benchmark):
    from _report import bench_json, report, run_once

    def _body():
        rows = executor_rows()
        report("bench_executors", executor_table(rows))
        bench_json(
            "executors",
            "executors",
            {
                "workload": dict(
                    size=28, steps=2, population=16, generations=3,
                    seeds=[0, 1],
                ),
                "rows": rows,
            },
        )
        return rows

    rows = run_once(benchmark, _body)
    assert all(row["records"] == rows[0]["records"] for row in rows)


def test_few_big_groups_report(benchmark):
    from _report import bench_json, report, run_once

    def _body():
        rows = few_big_groups_rows()
        report("bench_few_big_groups", few_big_groups_table(rows))
        bench_json(
            "executors",
            "few_big_groups",
            {
                "workload": dict(
                    size=28, steps=2, population=16, generations=3,
                    n_seeds=6, workers=3,
                ),
                "rows": rows,
            },
        )
        return rows

    rows = run_once(benchmark, _body)
    assert [r["records"] for r in rows] == [12, 12, 12]
    halving = next(r for r in rows if r["mode"] == "unit leases")
    cost = next(r for r in rows if r["mode"] == "cost-aware units")
    assert cost["round_trips"] < halving["round_trips"], (
        f"piggybacked granting should cut round-trips: "
        f"cost {cost['round_trips']} vs halving {halving['round_trips']}"
    )
    assert cost["idle_seconds"] <= halving["idle_seconds"] * 1.1, (
        f"cost scheduling should not idle the fleet more: "
        f"cost {cost['idle_seconds']:.2f}s vs halving "
        f"{halving['idle_seconds']:.2f}s"
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--few-big-groups",
        action="store_true",
        help="run only the few-big-groups scheduling comparison and "
        "record it under benchmarks/reports/ (the full-size rows the "
        "committed BENCH report keeps)",
    )
    cli = ap.parse_args()
    if cli.few_big_groups:
        from _report import bench_json, report

        fbg_rows = few_big_groups_rows()
        report("bench_few_big_groups", few_big_groups_table(fbg_rows))
        bench_json(
            "executors",
            "few_big_groups",
            {
                "workload": dict(
                    size=28, steps=2, population=16, generations=3,
                    n_seeds=6, workers=3,
                ),
                "rows": fbg_rows,
            },
        )
        print(few_big_groups_table(fbg_rows))
    else:
        print(executor_table(executor_rows()))
        print()
        print(few_big_groups_table(few_big_groups_rows()))
