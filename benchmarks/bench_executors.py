"""Executor comparison: inline vs process shards vs a loopback fleet.

Measures the wall-clock of the same experiment plan under the three
:class:`~repro.distributed.executors.GroupExecutor` policies and
verifies their stores agree bitwise (wall-clock timing fields
excluded). The multi-process executors parallelise over independent
``(case, backend)`` groups, so their advantage grows with the number of
groups and the per-group cost; the fleet additionally pays the TCP
lease/drain round-trips, which this bench shows to be negligible
against real simulation work.

``smoke_executors`` runs the same comparison at tiny sizes with no
timing assertions — the distributed-smoke CI job calls it.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path

from repro.distributed import (
    FleetExecutor,
    InlineExecutor,
    ProcessShardExecutor,
    run_worker,
)
from repro.experiments import (
    BudgetSpec,
    CaseSpec,
    ExperimentPlan,
    ExperimentRunner,
    ResultsStore,
)
from repro.experiments.store import record_key, strip_wallclock


def _plan(
    size: int, steps: int, population: int, generations: int, seeds
) -> ExperimentPlan:
    return ExperimentPlan(
        name="bench-executors",
        systems=("ess", "ess-ns"),
        cases=(
            CaseSpec("grassland", size=size, steps=steps),
            CaseSpec("river_gap", size=size, steps=steps),
        ),
        seeds=tuple(seeds),
        backends=("vectorized",),
        budget=BudgetSpec(
            population=population,
            generations=generations,
            session_cache_size=4096,
        ),
    )


def _fingerprint(store: ResultsStore) -> list[dict]:
    """Sorted records in the shared wall-clock-free parity view."""
    return [
        strip_wallclock(r) for r in sorted(store.records(), key=record_key)
    ]


def _run_fleet(plan: ExperimentPlan, store: ResultsStore, workdir: Path):
    """Loopback coordinator + two worker processes."""
    ctx = multiprocessing.get_context("fork")
    procs: list = []

    def on_bound(address):
        for i in range(2):
            proc = ctx.Process(
                target=run_worker,
                args=(address,),
                kwargs=dict(
                    store_path=str(workdir / f"fleet-worker{i}.jsonl"),
                    worker_id=f"bench-w{i}",
                ),
            )
            proc.start()
            procs.append(proc)

    executor = FleetExecutor(
        lease_timeout=60.0, poll_interval=0.05, timeout=3600.0,
        on_bound=on_bound,
    )
    try:
        ExperimentRunner(store=store).run(plan, executor=executor)
    finally:
        for proc in procs:
            proc.join(timeout=60)
            if proc.is_alive():  # pragma: no cover - bench hygiene
                proc.kill()


def executor_rows(
    size: int = 28,
    steps: int = 2,
    population: int = 16,
    generations: int = 3,
    seeds=(0, 1),
) -> list[dict]:
    """Time the three executors on one plan; assert store parity."""
    plan = _plan(size, steps, population, generations, seeds)
    rows: list[dict] = []
    fingerprints: list = []
    with tempfile.TemporaryDirectory(prefix="bench-executors-") as tmp:
        workdir = Path(tmp)
        for label, run in (
            (
                "inline",
                lambda store: ExperimentRunner(store=store).run(
                    plan, executor=InlineExecutor()
                ),
            ),
            (
                "process x2",
                lambda store: ExperimentRunner(store=store).run(
                    plan, executor=ProcessShardExecutor(2)
                ),
            ),
            (
                "fleet x2 (loopback)",
                lambda store: _run_fleet(plan, store, workdir),
            ),
        ):
            store = ResultsStore(
                workdir / f"{label.split()[0]}.jsonl"
            )
            start = time.perf_counter()
            run(store)
            elapsed = time.perf_counter() - start
            fingerprints.append(_fingerprint(store))
            rows.append(
                {
                    "executor": label,
                    "seconds": elapsed,
                    "records": len(store.records()),
                }
            )
        reference = fingerprints[0]
        for label_rows, fingerprint in zip(rows, fingerprints):
            assert fingerprint == reference, (
                f"{label_rows['executor']} diverged from inline"
            )
    baseline = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = baseline / row["seconds"]
    return rows


def executor_table(rows: list[dict]) -> str:
    header = f"{'executor':<22}{'records':>8}{'seconds':>10}{'speedup':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['executor']:<22}{row['records']:>8}"
            f"{row['seconds']:>10.2f}{row['speedup']:>9.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Smoke mode — tiny grid, parity only (the distributed-smoke CI job).
# ----------------------------------------------------------------------
def smoke_executors() -> list[dict]:
    """All three executors agree bitwise on a tiny 2-group plan."""
    return executor_rows(
        size=20, steps=2, population=8, generations=2, seeds=(0,)
    )


# ----------------------------------------------------------------------
# Full benchmark (pytest-benchmark harness)
# ----------------------------------------------------------------------
def test_executor_comparison_report(benchmark):
    from _report import report, run_once

    def _body():
        rows = executor_rows()
        report("bench_executors", executor_table(rows))
        return rows

    rows = run_once(benchmark, _body)
    assert all(row["records"] == rows[0]["records"] for row in rows)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(executor_table(executor_rows()))
