"""Shared reporting for the benchmark harness.

Each bench regenerates one exhibit of the paper (Table I, Figs. 1–3,
Algorithm 1) or one hypothesis experiment (E1–E5). pytest captures
stdout, so every bench also writes its table to
``benchmarks/reports/<id>.txt`` — those files are the measured side of
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os

_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def report(experiment_id: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/reports/."""
    os.makedirs(_REPORT_DIR, exist_ok=True)
    path = os.path.join(_REPORT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n=== {experiment_id} ===\n{text}\n")


def bench_json(bench_id: str, section: str, payload: dict) -> str:
    """Merge one section into ``benchmarks/reports/BENCH_<id>.json``.

    The machine-readable companion of :func:`report`: each bench body
    (smoke or full) contributes its own ``section`` — workload
    parameters plus raw result rows with wall-times/speedups — without
    clobbering sections written by other bodies of the same bench. The
    file is rewritten atomically (temp + rename) so a crash mid-dump
    never leaves a truncated document; an unreadable existing file is
    replaced rather than crashing the bench that only reports on it.
    Returns the file path.
    """
    os.makedirs(_REPORT_DIR, exist_ok=True)
    path = os.path.join(_REPORT_DIR, f"BENCH_{bench_id}.json")
    doc: dict = {"bench": bench_id, "sections": {}}
    try:
        with open(path) as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and isinstance(
            existing.get("sections"), dict
        ):
            doc["sections"] = existing["sections"]
    except (OSError, ValueError):
        pass
    doc["sections"][section] = payload
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def run_once(benchmark, fn):
    """Execute a report body exactly once under the benchmark fixture.

    Report tests time an entire experiment (minutes of pipeline work),
    so they run a single round; using the fixture keeps them alive under
    ``--benchmark-only``, which skips fixture-less tests.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
