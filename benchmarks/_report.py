"""Shared reporting for the benchmark harness.

Each bench regenerates one exhibit of the paper (Table I, Figs. 1–3,
Algorithm 1) or one hypothesis experiment (E1–E5). pytest captures
stdout, so every bench also writes its table to
``benchmarks/reports/<id>.txt`` — those files are the measured side of
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def report(experiment_id: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/reports/."""
    os.makedirs(_REPORT_DIR, exist_ok=True)
    path = os.path.join(_REPORT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n=== {experiment_id} ===\n{text}\n")


def run_once(benchmark, fn):
    """Execute a report body exactly once under the benchmark fixture.

    Report tests time an entire experiment (minutes of pipeline work),
    so they run a single round; using the fixture keeps them alive under
    ``--benchmark-only``, which skips fixture-less tests.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
