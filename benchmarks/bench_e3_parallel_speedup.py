"""E3 — Master/Worker speedup of the fitness-evaluation stage.

The paper's first version parallelises exactly the scenario simulations
(§III-B "parallelism will only be implemented in the evaluation of the
scenarios"). This bench measures that stage serially, via the process
pool and via the explicit message engine, and prints the speedup/
efficiency table. On a single-core host the exercise degenerates to a
correctness check (all backends bit-identical); the table still records
the overhead structure.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.metrics import speedup_table
from repro.analysis.reporting import format_table
from repro.parallel.executor import ProcessPoolEvaluator, SerialEvaluator
from repro.parallel.master_worker import MasterWorkerEngine

from _report import report, run_once

BATCH = 48


def test_e3_speedup_report(benchmark, bench_problem, space):
    def _body():
        genomes = space.sample(BATCH, 17)
        serial = SerialEvaluator(bench_problem)
        t0 = time.perf_counter()
        reference = serial(genomes)
        serial_seconds = time.perf_counter() - t0

        parallel_seconds: dict[int, float] = {}
        identical = {}
        for workers in (2, 4):
            with ProcessPoolEvaluator(bench_problem, n_workers=workers) as pool:
                pool(genomes[:2])  # warm-up
                t0 = time.perf_counter()
                values = pool(genomes)
                parallel_seconds[workers] = time.perf_counter() - t0
            identical[workers] = bool(np.allclose(values, reference))

        with MasterWorkerEngine(bench_problem, n_workers=2, chunk_size=2) as eng:
            t0 = time.perf_counter()
            values = eng(genomes)
            engine_seconds = time.perf_counter() - t0
            imbalance = eng.load_imbalance()
        engine_identical = bool(np.allclose(values, reference))

        rows = speedup_table(serial_seconds, parallel_seconds)
        table = format_table(
            ["workers", "seconds", "speedup", "efficiency"],
            [[r["workers"], r["seconds"], r["speedup"], r["efficiency"]] for r in rows],
        )
        extra = (
            f"\nmessage engine (2 workers, chunk 2): {engine_seconds:.4f}s, "
            f"imbalance {imbalance:.2f}, identical={engine_identical}"
            f"\nhost cpu count: {os.cpu_count()}"
            f"\nall pool results identical to serial: {identical}"
        )
        report("E3_speedup", table + extra)
        assert all(identical.values()) and engine_identical


    run_once(benchmark, _body)

def test_bench_serial_batch(benchmark, bench_problem, space):
    """Reference cost: BATCH scenario evaluations in-process."""
    genomes = space.sample(BATCH, 17)
    ev = SerialEvaluator(bench_problem)
    out = benchmark.pedantic(lambda: ev(genomes), rounds=3, iterations=1)
    assert out.shape == (BATCH,)


def test_bench_pool_batch(benchmark, bench_problem, space):
    """The same batch through a 2-worker process pool."""
    genomes = space.sample(BATCH, 17)
    with ProcessPoolEvaluator(bench_problem, n_workers=2) as pool:
        pool(genomes[:2])  # warm-up
        out = benchmark.pedantic(lambda: pool(genomes), rounds=3, iterations=1)
    assert out.shape == (BATCH,)
