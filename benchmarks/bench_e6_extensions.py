"""E6 — the §IV future-work variants, measured.

The paper closes with a list of planned extensions; this repository
implements them and this bench quantifies each:

* **hybrid guidance** — weighted novelty/fitness sum (ref [31]):
  sweeping the weight trades exploration for exploitation, and the trap
  landscape shows where each regime wins;
* **dynamic novelty-threshold archive** (ref [15]) vs the fixed-size
  archive of the first version;
* **island ESS-NS with hybridization** vs the one-level ESS-NS of the
  paper, on prediction quality.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.archive import ThresholdArchive
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.parallel.executor import SerialEvaluator
from repro.parallel.islands import IslandModelConfig
from repro.systems import ESSNS, ESSNSIM, ESSNSConfig, ESSNSIMConfig
from repro.workloads.deceptive import DeceptiveLandscape

from _report import report, run_once

_TRIALS = 6
_TERM = Termination(max_generations=25, fitness_threshold=0.99)


def _trap_race(space, archive_factory=None, **cfg_overrides):
    defaults = dict(
        population_size=24, k_neighbors=8, mutation="gaussian",
        best_set_capacity=16, archive_capacity=60,
    )
    defaults.update(cfg_overrides)
    config = NoveltyGAConfig(**defaults)
    best, escapes = [], 0
    for trial in range(_TRIALS):
        land = DeceptiveLandscape(space, rng=50_000 + trial)
        archive = archive_factory() if archive_factory else None
        result = NoveltyGA(config).run(
            SerialEvaluator(land), space, _TERM, rng=trial, archive=archive
        )
        score = result.best_set.max_fitness()
        best.append(score)
        escapes += score > land.trap_height
    return float(np.mean(best)), escapes


def test_e6_hybrid_weight_sweep(benchmark, space):
    def _body():
        rows = []
        for w in (0.0, 0.25, 0.5, 0.75, 1.0):
            mean_best, escapes = _trap_race(space, fitness_weight=w)
            rows.append([w, round(mean_best, 4), f"{escapes}/{_TRIALS}"])
        report(
            "E6_hybrid_weight",
            format_table(
                ["fitness weight w", "mean best fitness", "escaped trap"], rows
            ),
        )
        # pure novelty must escape the trap at least as often as pure
        # fitness guidance (the whole point of the paradigm)
        assert int(rows[0][2].split("/")[0]) >= int(rows[-1][2].split("/")[0])

    run_once(benchmark, _body)


def test_e6_threshold_archive(benchmark, space):
    def _body():
        bounded, b_esc = _trap_race(space)
        dynamic, d_esc = _trap_race(
            space,
            archive_factory=lambda: ThresholdArchive(
                threshold=0.02, max_size=120
            ),
        )
        rows = [
            ["fixed-size (first version)", round(bounded, 4), f"{b_esc}/{_TRIALS}"],
            ["dynamic threshold [15]", round(dynamic, 4), f"{d_esc}/{_TRIALS}"],
        ]
        report(
            "E6_threshold_archive",
            format_table(["archive", "mean best fitness", "escaped trap"], rows),
        )
        assert bounded > 0.4 and dynamic > 0.4

    run_once(benchmark, _body)


def test_e6_island_essns_quality(benchmark, bench_fire):
    def _body():
        nsga = NoveltyGAConfig(
            population_size=16, k_neighbors=8, best_set_capacity=12,
            archive_capacity=48,
        )
        island_nsga = NoveltyGAConfig(
            population_size=8, k_neighbors=6, best_set_capacity=8,
            archive_capacity=32,
        )
        hybrid_nsga = NoveltyGAConfig(
            population_size=8, k_neighbors=6, best_set_capacity=8,
            archive_capacity=32, fitness_weight=0.5,
        )
        islands = IslandModelConfig(
            n_islands=2, migration_interval=2, n_migrants=2
        )
        systems = [
            ESSNS(ESSNSConfig(nsga=nsga, max_generations=6)),
            ESSNSIM(
                ESSNSIMConfig(
                    nsga=island_nsga, islands=islands, max_generations=6
                )
            ),
            ESSNSIM(
                ESSNSIMConfig(
                    nsga=hybrid_nsga, islands=islands, max_generations=6
                )
            ),
            ESSNS(
                ESSNSConfig(
                    nsga=nsga,
                    max_generations=6,
                    novel_fraction=0.2,
                    random_fraction=0.1,
                )
            ),
        ]
        labels = ["ESS-NS (paper)", "ESSNS-IM", "ESSNS-IM(w=0.5)", "ESS-NS +novel/random mix"]
        rows = []
        for label, system in zip(labels, systems):
            qualities = [
                system.run(bench_fire, rng=7000 + seed).mean_quality()
                for seed in range(2)
            ]
            rows.append([label, round(float(np.mean(qualities)), 4)])
        report(
            "E6_island_essns",
            format_table(["system", "mean quality (2 seeds)"], rows),
        )
        for row in rows:
            assert 0.0 <= row[1] <= 1.0

    run_once(benchmark, _body)
