"""T1 — Table I: the fireLib parameter space.

Reproduces Table I as executable code: prints the exact rows (name,
description, range, unit) and benchmarks the scenario-space operations
every OS generation leans on (uniform sampling, box clipping,
genome↔scenario codec).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.scenario import TABLE_I_SPECS

from _report import report, run_once


def test_table1_rows_match_paper(benchmark):
    def _body():
        """Regenerate Table I itself and check it against the paper's rows."""
        rows = [
            [s.name, s.description, f"{s.low:g}-{s.high:g}", s.unit]
            for s in TABLE_I_SPECS
        ]
        text = format_table(["Parameter", "Description", "Range", "Unit"], rows)
        report("T1_table1", text)
        assert [r[0] for r in rows] == [
            "Model", "WindSpd", "WindDir", "M1", "M10", "M100",
            "Mherb", "Slope", "Aspect",
        ]
        assert rows[0][2] == "1-13"
        assert rows[1][2] == "0-80"
        assert rows[7][2] == "0-81"


    run_once(benchmark, _body)

def test_bench_sampling(benchmark, space):
    """Uniform scenario sampling — the OS initialisation cost."""
    out = benchmark(space.sample, 1000, 42)
    assert out.shape == (1000, 9)


def test_bench_clip(benchmark, space):
    """Box projection of mutated genomes (every offspring passes here)."""
    rng = np.random.default_rng(0)
    genomes = space.sample(1000, 1) + rng.normal(0, 50, (1000, 9))
    out = benchmark(space.clip, genomes)
    assert out.shape == genomes.shape


def test_bench_decode(benchmark, space):
    """Genome → Scenario decoding (one per Worker simulation)."""
    genome = space.sample(1, 2)[0]
    scenario = benchmark(space.decode, genome)
    assert 1 <= scenario.model <= 13


def test_bench_pairwise_distances(benchmark, space):
    """Population diversity measurement (per-generation analysis)."""
    genomes = space.sample(100, 3)
    out = benchmark(space.pairwise_distances, genomes)
    assert out.shape == (100, 100)
