"""E5 — ablations of the §III-B design choices and §IV future-work knobs.

Sweeps the Algorithm 1 design decisions the paper singles out:

* archive replacement policy — novelty-based (the paper) vs randomized
  (Doncieux et al. 2020);
* k for the ρ(x) computation (including the whole-population variant);
* Eq. 2 reading — absolute (default) vs literal signed;
* bestSet composition — offspring-only (literal pseudocode) vs also
  seeding from the initial population (§IV's "percentage of novel or
  random solutions" direction).

Each variant races on the deceptive landscape, where the design
differences actually matter; scores are escape rates and best fitness.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.ea.nsga import NoveltyGA, NoveltyGAConfig
from repro.ea.termination import Termination
from repro.parallel.executor import SerialEvaluator
from repro.workloads.deceptive import DeceptiveLandscape

from _report import report, run_once

_TRIALS = 6
_TERM = Termination(max_generations=25, fitness_threshold=0.99)


def _race(space, **cfg_overrides):
    defaults = dict(
        population_size=24, k_neighbors=8, mutation="gaussian",
        best_set_capacity=16, archive_capacity=60,
    )
    defaults.update(cfg_overrides)
    config = NoveltyGAConfig(**defaults)
    best, escapes = [], 0
    for trial in range(_TRIALS):
        land = DeceptiveLandscape(space, rng=40_000 + trial)
        result = NoveltyGA(config).run(
            SerialEvaluator(land), space, _TERM, rng=trial
        )
        score = result.best_set.max_fitness()
        best.append(score)
        escapes += score > land.trap_height
    return float(np.mean(best)), escapes


def test_e5_archive_policy_report(benchmark, space):
    def _body():
        rows = []
        for policy in ("novelty", "random"):
            mean_best, escapes = _race(space, archive_policy=policy)
            rows.append([policy, round(mean_best, 4), f"{escapes}/{_TRIALS}"])
        report(
            "E5_archive_policy",
            format_table(["archive policy", "mean best fitness", "escaped trap"], rows),
        )
        # both must be functional; the paper's policy should not be worse
        # by a large margin
        assert rows[0][1] > 0.5 and rows[1][1] > 0.5


    run_once(benchmark, _body)

def test_e5_k_sweep_report(benchmark, space):
    def _body():
        rows = []
        for k in (1, 4, 8, 16, None):
            mean_best, escapes = _race(space, k_neighbors=k)
            label = "whole set" if k is None else str(k)
            rows.append([label, round(mean_best, 4), f"{escapes}/{_TRIALS}"])
        report(
            "E5_k_sweep",
            format_table(["k", "mean best fitness", "escaped trap"], rows),
        )
        assert all(r[1] > 0.4 for r in rows)


    run_once(benchmark, _body)

def test_e5_distance_reading_report(benchmark, space):
    def _body():
        rows = []
        for signed in (False, True):
            mean_best, escapes = _race(space, signed_distance=signed)
            rows.append(
                ["signed Eq. 2" if signed else "|Eq. 2| (default)",
                 round(mean_best, 4), f"{escapes}/{_TRIALS}"]
            )
        report(
            "E5_distance_reading",
            format_table(["distance reading", "mean best fitness", "escaped trap"], rows),
        )
        # the absolute reading must be at least competitive
        assert rows[0][1] >= rows[1][1] - 0.15


    run_once(benchmark, _body)

def test_e5_best_set_seeding_report(benchmark, space):
    def _body():
        rows = []
        for include in (False, True):
            mean_best, escapes = _race(space, best_include_population=include)
            rows.append(
                ["offspring only (Alg. 1)" if not include else "+ initial population",
                 round(mean_best, 4), f"{escapes}/{_TRIALS}"]
            )
        report(
            "E5_best_set_seeding",
            format_table(["bestSet source", "mean best fitness", "escaped trap"], rows),
        )


    run_once(benchmark, _body)

def test_bench_nsga_generation(benchmark, space):
    """One Algorithm 1 generation on the deceptive landscape."""
    land = DeceptiveLandscape(space, rng=1)
    config = NoveltyGAConfig(population_size=24, k_neighbors=8)

    def one_gen():
        return NoveltyGA(config).run(
            SerialEvaluator(land), space, Termination(max_generations=1), rng=0
        )

    result = benchmark.pedantic(one_gen, rounds=3, iterations=1)
    assert len(result.best_set) > 0
