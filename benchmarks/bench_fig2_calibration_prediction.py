"""F2 — Fig. 2: generation of the prediction (SS → CS/SKign → PS).

Benchmarks the three Master-side stages in isolation on realistic
matrices and verifies the Kign-chaining data flow of Fig. 2: the CS of
step n produces the threshold the PS consumes at step n+1.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.stages.calibration import search_kign
from repro.stages.prediction import predict
from repro.stages.statistical import aggregate_burned_maps
from repro.systems.problem import PredictionStepProblem

from _report import report, run_once

N_MAPS = 24


def _solution_maps(bench_fire, bench_problem, space, step=1):
    """Burned maps of a plausible OS solution set (truth + noise)."""
    truth = space.encode(bench_fire.true_scenarios[0])
    genomes = np.vstack([truth, space.sample(N_MAPS - 1, 7)])
    return bench_problem.burned_maps(genomes), genomes


def test_fig2_kign_chain_report(benchmark, bench_fire, bench_problem, space):
    def _body():
        """Regenerate the Fig. 2 flow across two steps and print it."""
        maps1, genomes = _solution_maps(bench_fire, bench_problem, space)
        pm1 = aggregate_burned_maps(maps1)
        cal1 = search_kign(
            pm1, bench_fire.real_mask(1), pre_burned=bench_fire.start_mask(1)
        )

        p2 = PredictionStepProblem(
            bench_fire.terrain,
            bench_fire.start_mask(2),
            bench_fire.real_mask(2),
            bench_fire.step_horizon(2),
        )
        pm2 = aggregate_burned_maps(p2.burned_maps(genomes))
        out = predict(
            pm2,
            cal1.kign,  # ← the chained threshold, Fig. 2's defining arrow
            real_burned=bench_fire.real_mask(2),
            pre_burned=bench_fire.start_mask(2),
        )
        cal2 = search_kign(
            pm2, bench_fire.real_mask(2), pre_burned=bench_fire.start_mask(2)
        )
        rows = [
            ["1 (calibration)", cal1.kign, cal1.fitness, None],
            ["2 (prediction with Kign_1)", cal1.kign, None, out.quality],
            ["2 (new calibration)", cal2.kign, cal2.fitness, None],
        ]
        report(
            "F2_calibration_prediction",
            format_table(["step", "Kign", "cal. fitness", "pred. quality"], rows),
        )
        assert cal1.fitness > 0.5
        assert 0.0 <= out.quality <= 1.0


    run_once(benchmark, _body)

def test_bench_statistical_stage(benchmark, bench_fire, bench_problem, space):
    """SS: aggregate N_MAPS burned maps into the probability matrix."""
    maps, _ = _solution_maps(bench_fire, bench_problem, space)
    pm = benchmark(aggregate_burned_maps, maps)
    assert pm.n_maps == N_MAPS


def test_bench_skign_search(benchmark, bench_fire, bench_problem, space):
    """CS: the exhaustive-exact Kign search over attainable levels."""
    maps, _ = _solution_maps(bench_fire, bench_problem, space)
    pm = aggregate_burned_maps(maps)
    cal = benchmark(
        search_kign,
        pm,
        bench_fire.real_mask(1),
        bench_fire.start_mask(1),
    )
    assert cal.candidates_tested >= 1


def test_bench_prediction_stage(benchmark, bench_fire, bench_problem, space):
    """PS: threshold + fire-line extraction."""
    maps, _ = _solution_maps(bench_fire, bench_problem, space)
    pm = aggregate_burned_maps(maps)
    out = benchmark(
        predict, pm, 0.25, bench_fire.real_mask(1), bench_fire.start_mask(1)
    )
    assert out.burned.shape == bench_fire.terrain.shape


def test_bench_worker_simulation(benchmark, bench_problem, space):
    """The Worker unit of Figs. 1/3: one simulate + Eq. 3 evaluation."""
    genome = space.sample(1, 11)[0]
    fitness = benchmark(bench_problem.evaluate_one, genome)
    assert 0.0 <= fitness <= 1.0
