"""Shared fixtures for the benchmark harness (realistic sizes)."""

from __future__ import annotations

import pytest

from repro.core.scenario import ParameterSpace
from repro.systems.problem import PredictionStepProblem
from repro.workloads.cases import dynamic_wind_case, grassland_case


@pytest.fixture(scope="session")
def space():
    return ParameterSpace()


@pytest.fixture(scope="session")
def bench_fire():
    """The standard E1/F1/F3 case: 44×44 grassland, 3 steps."""
    return grassland_case(size=44, n_steps=3)


@pytest.fixture(scope="session")
def bench_dynamic_fire():
    """The dynamic-conditions stressor at bench scale."""
    return dynamic_wind_case(size=44, n_steps=4)


@pytest.fixture(scope="session")
def bench_problem(bench_fire):
    """Step-1 evaluation problem of the standard case."""
    return PredictionStepProblem(
        terrain=bench_fire.terrain,
        start_burned=bench_fire.start_mask(1),
        real_burned=bench_fire.real_mask(1),
        horizon=bench_fire.step_horizon(1),
    )
