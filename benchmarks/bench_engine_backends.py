"""Engine backends — throughput of the batched simulation engine.

Compares the ``reference``, ``vectorized`` and ``process`` backends on
the synthetic (homogeneous grassland), mosaic (random fuel patches) and
ridge (heterogeneous slope/aspect rasters) workloads at GA-realistic
population sizes, measures what the scenario-result cache adds under an
elitist duplicate pattern, and times per-step engines against one
persistent run-scoped :class:`~repro.engine.EngineSession`.

Acceptance bars (asserted here): on the synthetic workload at
population ≥ 64 the vectorized backend is ≥ 3× faster than the
reference backend; on the heterogeneous-raster workload it is ≥ 2×;
both with bitwise-identical fitness values. The persistent session is
strictly faster than per-step engines on the process backend.

``smoke_*`` functions run the same comparisons at tiny sizes with no
timing assertions; ``tests/test_bench_engine_smoke.py`` wires them into
the tier-1 pytest run so backend regressions fail fast.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.scenario import ParameterSpace, Scenario
from repro.engine import EngineSession, SimulationEngine
from repro.grid.terrain import Terrain
from repro.systems.problem import PredictionStepProblem
from repro.workloads.cases import grassland_case
from repro.workloads.mosaic import random_fuel_mosaic
from repro.workloads.synthetic import ReferenceFire, make_reference_fire

SPACE = ParameterSpace()

#: Duplicate fraction injected into cache batches (elitism-like reuse).
_DUP_FRACTION = 0.25


def _mosaic_fire(size: int, n_steps: int = 2, seed: int = 3) -> ReferenceFire:
    terrain = random_fuel_mosaic(size, size, rng=seed)
    scenario = Scenario(
        model=1, wind_speed=8.0, wind_dir=90.0, m1=6.0, m10=8.0,
        m100=10.0, mherb=60.0, slope=5.0, aspect=270.0,
    )
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(size // 2, size // 4)],
        n_steps=n_steps,
        step_minutes=25.0,
        description=f"mosaic {size}x{size}",
    )


def _ridge_fire(size: int, n_steps: int = 2) -> ReferenceFire:
    """Heterogeneous slope/aspect rasters (the batched raster path)."""
    terrain = Terrain.with_ridge(size, size, max_slope=35.0)
    scenario = Scenario(
        model=1, wind_speed=8.0, wind_dir=90.0, m1=6.0, m10=8.0,
        m100=10.0, mherb=60.0, slope=5.0, aspect=270.0,
    )
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(size // 2, size // 4)],
        n_steps=n_steps,
        step_minutes=25.0,
        description=f"ridge {size}x{size}",
    )


def _step_problem(fire: ReferenceFire) -> PredictionStepProblem:
    return PredictionStepProblem(
        terrain=fire.terrain,
        start_burned=fire.start_mask(1),
        real_burned=fire.real_mask(1),
        horizon=fire.step_horizon(1),
    )


def _time_backend(
    problem: PredictionStepProblem,
    backend: str,
    genomes: np.ndarray,
    repeats: int,
    cache_size: int = 0,
) -> tuple[float, np.ndarray]:
    """Best-of-``repeats`` wall-clock and the fitness vector."""
    best = float("inf")
    values = None
    for _ in range(repeats):
        with SimulationEngine.from_problem(
            problem, backend=backend, cache_size=cache_size
        ) as engine:
            start = time.perf_counter()
            values = engine(genomes)
            best = min(best, time.perf_counter() - start)
    assert values is not None
    return best, values


def compare_backends(
    fire: ReferenceFire,
    population: int,
    seed: int = 7,
    repeats: int = 1,
    backends: tuple[str, ...] = ("reference", "vectorized", "process"),
) -> list[dict]:
    """Time each backend on one batch; assert bitwise-equal fitness."""
    problem = _step_problem(fire)
    genomes = SPACE.sample(population, seed)
    rows: list[dict] = []
    baseline = None
    for backend in backends:
        seconds, values = _time_backend(problem, backend, genomes, repeats)
        if baseline is None:
            baseline = (seconds, values)
        else:
            assert np.array_equal(values, baseline[1]), (
                f"{backend} fitness differs from {backends[0]}"
            )
        rows.append(
            {
                "workload": fire.description,
                "backend": backend,
                "population": population,
                "seconds": seconds,
                "speedup": baseline[0] / seconds,
                "evals_per_sec": population / seconds,
            }
        )
    return rows


def session_rows(
    fire: ReferenceFire,
    population: int,
    n_steps: int = 3,
    seed: int = 13,
    backend: str = "process",
    n_workers: int = 2,
    repeats: int = 1,
) -> list[dict]:
    """Per-step engines vs one persistent session over a step loop.

    Both modes evaluate the identical genome batch at every step; the
    per-step mode pays an engine (and pool) construction per step, the
    session mode forks once and ships each step's terrain to the
    standing workers as an update message.
    """
    problems = [
        PredictionStepProblem(
            terrain=fire.terrain,
            start_burned=fire.start_mask(s),
            real_burned=fire.real_mask(s),
            horizon=fire.step_horizon(s),
        )
        for s in range(1, min(n_steps, fire.n_steps) + 1)
    ]
    genomes = SPACE.sample(population, seed)

    def run_per_step() -> np.ndarray:
        values = []
        for problem in problems:
            with SimulationEngine.from_problem(
                problem, backend=backend, n_workers=n_workers
            ) as engine:
                values.append(engine(genomes))
        return np.concatenate(values)

    def run_session() -> np.ndarray:
        values = []
        with EngineSession(backend=backend, n_workers=n_workers) as session:
            for problem in problems:
                engine = session.for_step(problem)
                values.append(engine(genomes))
                engine.close()
        return np.concatenate(values)

    rows = []
    baseline = None
    for mode, fn in (("per-step engines", run_per_step), ("session", run_session)):
        best = float("inf")
        values = None
        for _ in range(repeats):
            start = time.perf_counter()
            values = fn()
            best = min(best, time.perf_counter() - start)
        assert values is not None
        if baseline is None:
            baseline = (best, values)
        else:
            assert np.array_equal(values, baseline[1]), (
                f"{mode} fitness differs from per-step engines"
            )
        rows.append(
            {
                "workload": fire.description,
                "mode": mode,
                "backend": backend,
                "steps": len(problems),
                "population": population,
                "seconds": best,
                "speedup": baseline[0] / best,
            }
        )
    return rows


def sweep_session_rows(
    size: int = 32,
    steps: int = 2,
    population: int = 16,
    generations: int = 3,
    seeds: tuple[int, ...] = (0, 1),
    backend: str = "vectorized",
    n_workers: int = 1,
    session_cache: int = 4096,
    repeats: int = 1,
) -> list[dict]:
    """Shared-session sweep vs per-system sessions over a 2-system grid.

    Both modes execute the identical ESS + ESS-NS × seeds grid through
    the experiment runner; the per-system mode gives every run its own
    :class:`~repro.engine.EngineSession`, the shared mode one session
    per (case, backend) group — cross-system repeats of the same step
    context skip the simulator, and on the pooled backends the group
    forks **one** worker pool where per-system sessions fork one per
    run. Fitness trajectories are asserted bitwise-identical between
    the modes.
    """
    from repro.experiments import (
        BudgetSpec,
        CaseSpec,
        ExperimentPlan,
        ExperimentRunner,
    )

    plan = ExperimentPlan(
        name="bench-sweep",
        systems=("ess", "ess-ns"),
        cases=(CaseSpec("grassland", size=size, steps=steps),),
        seeds=tuple(seeds),
        backends=(backend,),
        budget=BudgetSpec(
            population=population,
            generations=generations,
            n_workers=n_workers,
            session_cache_size=session_cache,
        ),
    )
    modes = (("per-system sessions", False), ("shared session", True))
    best = {mode: float("inf") for mode, _ in modes}
    results = {}
    # repeats are interleaved so clock drift and machine warm-up hit
    # both modes equally
    for _ in range(repeats):
        for mode, shared in modes:
            runner = ExperimentRunner(share_sessions=shared)
            start = time.perf_counter()
            results[mode] = runner.run(plan)
            best[mode] = min(best[mode], time.perf_counter() - start)
    baseline_mode = modes[0][0]
    baseline_qualities = [run.qualities() for run in results[baseline_mode].runs()]
    rows = []
    for mode, _ in modes:
        result = results[mode]
        for ours, theirs in zip(
            [run.qualities() for run in result.runs()], baseline_qualities
        ):
            assert np.array_equal(ours, theirs, equal_nan=True), (
                f"{mode} qualities differ from {baseline_mode}"
            )
        totals = result.per_system_totals()
        rows.append(
            {
                "workload": f"grassland {size}x{size}",
                "mode": mode,
                "backend": backend,
                "runs": len(result.records),
                "population": population,
                "seconds": best[mode],
                "speedup": best[baseline_mode] / best[mode],
                "simulations": sum(t["simulations"] for t in totals.values()),
                "cross_system_hits": result.cross_system_hits(),
            }
        )
    return rows


def sweep_session_table(rows: list[dict]) -> str:
    return format_table(
        ["workload", "mode", "runs", "pop", "sims", "x-sys hits", "sec", "speedup"],
        [
            [
                r["workload"],
                r["mode"],
                r["runs"],
                r["population"],
                r["simulations"],
                r["cross_system_hits"],
                round(r["seconds"], 4),
                round(r["speedup"], 2),
            ]
            for r in rows
        ],
    )


def cache_rows(fire: ReferenceFire, population: int, seed: int = 11) -> list[dict]:
    """Vectorized backend with/without the cache on a duplicate-heavy batch."""
    problem = _step_problem(fire)
    rng = np.random.default_rng(seed)
    genomes = SPACE.sample(population, seed)
    n_dup = max(1, int(population * _DUP_FRACTION))
    genomes[rng.choice(population, n_dup, replace=False)] = genomes[0]
    rows = []
    for cache_size in (0, 4 * population):
        with SimulationEngine.from_problem(
            problem, backend="vectorized", cache_size=cache_size
        ) as engine:
            start = time.perf_counter()
            engine(genomes)
            engine(genomes)  # the next generation resubmits survivors
            seconds = time.perf_counter() - start
            stats = engine.stats
        rows.append(
            {
                "workload": fire.description,
                "cache": cache_size,
                "evaluations": stats.evaluations,
                "simulations": stats.simulations,
                "hit_rate": stats.cache.hit_rate(),
                "seconds": seconds,
            }
        )
    return rows


def backend_table(rows: list[dict]) -> str:
    return format_table(
        ["workload", "backend", "pop", "sec", "speedup", "evals/s"],
        [
            [
                r["workload"],
                r["backend"],
                r["population"],
                round(r["seconds"], 4),
                round(r["speedup"], 2),
                round(r["evals_per_sec"], 1),
            ]
            for r in rows
        ],
    )


def cache_table(rows: list[dict]) -> str:
    return format_table(
        ["workload", "cache", "evals", "sims", "hit rate", "sec"],
        [
            [
                r["workload"],
                r["cache"],
                r["evaluations"],
                r["simulations"],
                round(r["hit_rate"], 3),
                round(r["seconds"], 4),
            ]
            for r in rows
        ],
    )


def session_table(rows: list[dict]) -> str:
    return format_table(
        ["workload", "mode", "backend", "steps", "pop", "sec", "speedup"],
        [
            [
                r["workload"],
                r["mode"],
                r["backend"],
                r["steps"],
                r["population"],
                round(r["seconds"], 4),
                round(r["speedup"], 2),
            ]
            for r in rows
        ],
    )


# ----------------------------------------------------------------------
# Smoke mode — tiny grids, 2 generations; wired into tier-1 pytest.
# ----------------------------------------------------------------------
def smoke_backends() -> list[dict]:
    """All backends agree bitwise on tiny synthetic/mosaic/ridge workloads."""
    from _report import bench_json

    rows = []
    rows += compare_backends(
        grassland_case(size=24, n_steps=2), population=12, repeats=1
    )
    rows += compare_backends(_mosaic_fire(20), population=12, repeats=1)
    rows += compare_backends(_ridge_fire(20), population=12, repeats=1)
    bench_json(
        "engine",
        "backends_smoke",
        {"workload": dict(population=12, repeats=1), "rows": rows},
    )
    return rows


def smoke_session() -> list[dict]:
    """Persistent session agrees bitwise with per-step engines."""
    from _report import bench_json

    rows = session_rows(
        grassland_case(size=20, n_steps=2), population=8, n_steps=2
    )
    bench_json(
        "engine",
        "session_smoke",
        {
            "workload": dict(size=20, population=8, n_steps=2),
            "rows": rows,
        },
    )
    return rows


def smoke_shared_sweep() -> list[dict]:
    """Shared-session sweeps agree bitwise and actually reuse across
    systems (no timing assertions at smoke sizes)."""
    from _report import bench_json

    rows = sweep_session_rows(
        size=20, steps=2, population=8, generations=2, seeds=(0,)
    )
    bench_json(
        "engine",
        "shared_sweep_smoke",
        {
            "workload": dict(
                size=20, steps=2, population=8, generations=2, seeds=[0]
            ),
            "rows": rows,
        },
    )
    by_mode = {r["mode"]: r for r in rows}
    assert by_mode["shared session"]["cross_system_hits"] > 0
    assert by_mode["per-system sessions"]["cross_system_hits"] == 0
    assert (
        by_mode["shared session"]["simulations"]
        < by_mode["per-system sessions"]["simulations"]
    )
    return rows


def smoke_pipeline() -> None:
    """A 2-generation ESS run is backend- and session-invariant end to end."""
    from repro.ea.ga import GAConfig
    from repro.systems import ESS, ESSConfig

    fire = grassland_case(size=24, n_steps=2)

    def run(backend: str, cache_size: int = 0, session_cache_size: int = 0):
        return ESS(
            ESSConfig(ga=GAConfig(population_size=8), max_generations=2),
            backend=backend,
            cache_size=cache_size,
            session_cache_size=session_cache_size,
        ).run(fire, rng=1)

    ref = run("reference")
    vec = run("vectorized")
    assert np.array_equal(ref.qualities(), vec.qualities(), equal_nan=True)
    assert [s.kign for s in ref.steps] == [s.kign for s in vec.steps]
    cached = run("vectorized", cache_size=256)
    assert cached.engine_totals()["simulations"] <= cached.engine_totals()[
        "evaluations"
    ]
    session = run("vectorized", session_cache_size=1024)
    assert np.array_equal(ref.qualities(), session.qualities(), equal_nan=True)
    assert session.session["steps"] == fire.n_steps


# ----------------------------------------------------------------------
# Full benchmark (pytest-benchmark harness)
# ----------------------------------------------------------------------
def test_engine_backend_comparison_report(benchmark):
    from _report import bench_json, report, run_once

    def _body():
        rows = []
        synthetic = grassland_case(size=64, n_steps=2)
        for population in (64, 128):
            rows += compare_backends(synthetic, population, repeats=3)
        mosaic = _mosaic_fire(48)
        rows += compare_backends(mosaic, 64, repeats=3)
        ridge = _ridge_fire(48)
        for population in (64, 128):
            rows += compare_backends(ridge, population, repeats=3)

        crows = cache_rows(synthetic, 64) + cache_rows(mosaic, 64)
        srows = session_rows(
            grassland_case(size=48, n_steps=3), population=64, n_steps=3,
            repeats=3,
        )
        swrows = sweep_session_rows(
            size=40, steps=3, population=32, generations=4, seeds=(0, 1),
            backend="process", n_workers=2, repeats=3,
        )
        text = (
            backend_table(rows)
            + "\n\nscenario-result cache (25% duplicates, 2 generations):\n"
            + cache_table(crows)
            + "\n\nper-step engines vs persistent EngineSession "
            + "(process backend, 2 workers):\n"
            + session_table(srows)
            + "\n\nexperiment sweeps: per-system sessions vs one shared "
            + "session per (case, backend) group (process backend, 2 "
            + "workers):\n"
            + sweep_session_table(swrows)
        )
        report("engine_backends", text)
        bench_json(
            "engine",
            "backends",
            {
                "workload": dict(populations=[64, 128], repeats=3),
                "rows": rows,
            },
        )
        bench_json(
            "engine",
            "cache",
            {
                "workload": dict(population=64, dup_fraction=_DUP_FRACTION),
                "rows": crows,
            },
        )
        bench_json(
            "engine",
            "session",
            {
                "workload": dict(
                    size=48, population=64, n_steps=3, repeats=3
                ),
                "rows": srows,
            },
        )
        bench_json(
            "engine",
            "shared_sweep",
            {
                "workload": dict(
                    size=40, steps=3, population=32, generations=4,
                    seeds=[0, 1], backend="process", n_workers=2, repeats=3,
                ),
                "rows": swrows,
            },
        )

        # Acceptance bars: ≥ 3× on the synthetic workload at pop ≥ 64,
        # ≥ 2× on the heterogeneous-raster workload at pop ≥ 64.
        synth = [
            r
            for r in rows
            if r["backend"] == "vectorized" and "grassland" in r["workload"]
        ]
        worst = min(r["speedup"] for r in synth)
        assert worst >= 3.0, f"vectorized speedup {worst:.2f}x < 3x"
        hetero = [
            r
            for r in rows
            if r["backend"] == "vectorized" and "ridge" in r["workload"]
        ]
        worst_h = min(r["speedup"] for r in hetero)
        assert worst_h >= 2.0, (
            f"heterogeneous-raster vectorized speedup {worst_h:.2f}x < 2x"
        )
        # Acceptance bar: the persistent session beats per-step engines.
        by_mode = {r["mode"]: r["seconds"] for r in srows}
        assert by_mode["session"] < by_mode["per-step engines"], (
            f"session {by_mode['session']:.4f}s not faster than "
            f"per-step engines {by_mode['per-step engines']:.4f}s"
        )
        # Acceptance bar: a shared-session sweep costs no more wall time
        # than per-system sessions (it strictly skips simulations).
        by_sweep = {r["mode"]: r["seconds"] for r in swrows}
        assert (
            by_sweep["shared session"] <= by_sweep["per-system sessions"]
        ), (
            f"shared-session sweep {by_sweep['shared session']:.4f}s slower "
            f"than per-system sessions "
            f"{by_sweep['per-system sessions']:.4f}s"
        )
        cross = {r["mode"]: r["cross_system_hits"] for r in swrows}
        assert cross["shared session"] > 0
        return rows

    run_once(benchmark, _body)
