"""Engine backends — throughput of the batched simulation engine.

Compares the ``reference``, ``vectorized`` and ``process`` backends on
the synthetic (homogeneous grassland) and mosaic (random fuel patches)
workloads at GA-realistic population sizes, and measures what the
scenario-result cache adds under an elitist duplicate pattern.

Acceptance bar (asserted here): on the synthetic workload at
population ≥ 64 the vectorized backend is ≥ 3× faster than the
reference backend, with bitwise-identical fitness values.

``smoke_*`` functions run the same comparisons at tiny sizes with no
timing assertions; ``tests/test_bench_engine_smoke.py`` wires them into
the tier-1 pytest run so backend regressions fail fast.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.scenario import ParameterSpace, Scenario
from repro.engine import SimulationEngine
from repro.systems.problem import PredictionStepProblem
from repro.workloads.cases import grassland_case
from repro.workloads.mosaic import random_fuel_mosaic
from repro.workloads.synthetic import ReferenceFire, make_reference_fire

SPACE = ParameterSpace()

#: Duplicate fraction injected into cache batches (elitism-like reuse).
_DUP_FRACTION = 0.25


def _mosaic_fire(size: int, n_steps: int = 2, seed: int = 3) -> ReferenceFire:
    terrain = random_fuel_mosaic(size, size, rng=seed)
    scenario = Scenario(
        model=1, wind_speed=8.0, wind_dir=90.0, m1=6.0, m10=8.0,
        m100=10.0, mherb=60.0, slope=5.0, aspect=270.0,
    )
    return make_reference_fire(
        terrain,
        scenario,
        ignition=[(size // 2, size // 4)],
        n_steps=n_steps,
        step_minutes=25.0,
        description=f"mosaic {size}x{size}",
    )


def _step_problem(fire: ReferenceFire) -> PredictionStepProblem:
    return PredictionStepProblem(
        terrain=fire.terrain,
        start_burned=fire.start_mask(1),
        real_burned=fire.real_mask(1),
        horizon=fire.step_horizon(1),
    )


def _time_backend(
    problem: PredictionStepProblem,
    backend: str,
    genomes: np.ndarray,
    repeats: int,
    cache_size: int = 0,
) -> tuple[float, np.ndarray]:
    """Best-of-``repeats`` wall-clock and the fitness vector."""
    best = float("inf")
    values = None
    for _ in range(repeats):
        with SimulationEngine.from_problem(
            problem, backend=backend, cache_size=cache_size
        ) as engine:
            start = time.perf_counter()
            values = engine(genomes)
            best = min(best, time.perf_counter() - start)
    assert values is not None
    return best, values


def compare_backends(
    fire: ReferenceFire,
    population: int,
    seed: int = 7,
    repeats: int = 1,
    backends: tuple[str, ...] = ("reference", "vectorized", "process"),
) -> list[dict]:
    """Time each backend on one batch; assert bitwise-equal fitness."""
    problem = _step_problem(fire)
    genomes = SPACE.sample(population, seed)
    rows: list[dict] = []
    baseline = None
    for backend in backends:
        seconds, values = _time_backend(problem, backend, genomes, repeats)
        if baseline is None:
            baseline = (seconds, values)
        else:
            assert np.array_equal(values, baseline[1]), (
                f"{backend} fitness differs from {backends[0]}"
            )
        rows.append(
            {
                "workload": fire.description,
                "backend": backend,
                "population": population,
                "seconds": seconds,
                "speedup": baseline[0] / seconds,
                "evals_per_sec": population / seconds,
            }
        )
    return rows


def cache_rows(fire: ReferenceFire, population: int, seed: int = 11) -> list[dict]:
    """Vectorized backend with/without the cache on a duplicate-heavy batch."""
    problem = _step_problem(fire)
    rng = np.random.default_rng(seed)
    genomes = SPACE.sample(population, seed)
    n_dup = max(1, int(population * _DUP_FRACTION))
    genomes[rng.choice(population, n_dup, replace=False)] = genomes[0]
    rows = []
    for cache_size in (0, 4 * population):
        with SimulationEngine.from_problem(
            problem, backend="vectorized", cache_size=cache_size
        ) as engine:
            start = time.perf_counter()
            engine(genomes)
            engine(genomes)  # the next generation resubmits survivors
            seconds = time.perf_counter() - start
            stats = engine.stats
        rows.append(
            {
                "workload": fire.description,
                "cache": cache_size,
                "evaluations": stats.evaluations,
                "simulations": stats.simulations,
                "hit_rate": stats.cache.hit_rate(),
                "seconds": seconds,
            }
        )
    return rows


def backend_table(rows: list[dict]) -> str:
    return format_table(
        ["workload", "backend", "pop", "sec", "speedup", "evals/s"],
        [
            [
                r["workload"],
                r["backend"],
                r["population"],
                round(r["seconds"], 4),
                round(r["speedup"], 2),
                round(r["evals_per_sec"], 1),
            ]
            for r in rows
        ],
    )


def cache_table(rows: list[dict]) -> str:
    return format_table(
        ["workload", "cache", "evals", "sims", "hit rate", "sec"],
        [
            [
                r["workload"],
                r["cache"],
                r["evaluations"],
                r["simulations"],
                round(r["hit_rate"], 3),
                round(r["seconds"], 4),
            ]
            for r in rows
        ],
    )


# ----------------------------------------------------------------------
# Smoke mode — tiny grids, 2 generations; wired into tier-1 pytest.
# ----------------------------------------------------------------------
def smoke_backends() -> list[dict]:
    """All backends agree bitwise on tiny synthetic + mosaic workloads."""
    rows = []
    rows += compare_backends(
        grassland_case(size=24, n_steps=2), population=12, repeats=1
    )
    rows += compare_backends(_mosaic_fire(20), population=12, repeats=1)
    return rows


def smoke_pipeline() -> None:
    """A 2-generation ESS run is backend-invariant end to end."""
    from repro.ea.ga import GAConfig
    from repro.systems import ESS, ESSConfig

    fire = grassland_case(size=24, n_steps=2)

    def run(backend: str, cache_size: int = 0):
        return ESS(
            ESSConfig(ga=GAConfig(population_size=8), max_generations=2),
            backend=backend,
            cache_size=cache_size,
        ).run(fire, rng=1)

    ref = run("reference")
    vec = run("vectorized")
    assert np.array_equal(ref.qualities(), vec.qualities(), equal_nan=True)
    assert [s.kign for s in ref.steps] == [s.kign for s in vec.steps]
    cached = run("vectorized", cache_size=256)
    assert cached.engine_totals()["simulations"] <= cached.engine_totals()[
        "evaluations"
    ]


# ----------------------------------------------------------------------
# Full benchmark (pytest-benchmark harness)
# ----------------------------------------------------------------------
def test_engine_backend_comparison_report(benchmark):
    from _report import report, run_once

    def _body():
        rows = []
        synthetic = grassland_case(size=64, n_steps=2)
        for population in (64, 128):
            rows += compare_backends(synthetic, population, repeats=3)
        mosaic = _mosaic_fire(48)
        rows += compare_backends(mosaic, 64, repeats=3)

        crows = cache_rows(synthetic, 64) + cache_rows(mosaic, 64)
        text = (
            backend_table(rows)
            + "\n\nscenario-result cache (25% duplicates, 2 generations):\n"
            + cache_table(crows)
        )
        report("engine_backends", text)

        # Acceptance bar: ≥ 3× on the synthetic workload at pop ≥ 64.
        synth = [
            r
            for r in rows
            if r["backend"] == "vectorized" and "grassland" in r["workload"]
        ]
        worst = min(r["speedup"] for r in synth)
        assert worst >= 3.0, f"vectorized speedup {worst:.2f}x < 3x"
        return rows

    run_once(benchmark, _body)
