#!/usr/bin/env python
"""The §IV future-work variants in action: islands, hybrids, archives.

The paper's conclusions list planned extensions; this example runs the
implemented versions side by side on one reference fire:

1. **ESS-NS** — the paper's one-level proposal (baseline);
2. **ESSNS-IM** — island-model ESS-NS with ring migration and
   persistent per-island archives/bestSets;
3. **ESSNS-IM(w)** — islands with hybrid novelty/fitness guidance
   (the weighted sum of the paper's ref [31]);
4. **ESS-NS + mixing** — solution set with a percentage of novel and
   random scenarios on top of the bestSet core;
5. **ESS-NS + threshold archive** — the dynamic novelty-threshold
   archive of Lehman & Stanley (ref [15]).

Usage::

    python examples/islands_and_hybrids.py [--case grassland] [--size 44] [--steps 3]
"""

from __future__ import annotations

import argparse

from repro import (
    ESSNS,
    ESSNSIM,
    ESSNSConfig,
    ESSNSIMConfig,
    IslandModelConfig,
    NoveltyGAConfig,
)
from repro.analysis.reporting import format_table
from repro.workloads import CASE_BUILDERS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--case", choices=sorted(CASE_BUILDERS), default="grassland")
    parser.add_argument("--size", type=int, default=44)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=args.steps)
    print(f"case: {fire.description}\n")

    nsga = NoveltyGAConfig(
        population_size=16, k_neighbors=8, best_set_capacity=12, archive_capacity=48
    )
    island_nsga = NoveltyGAConfig(
        population_size=8, k_neighbors=6, best_set_capacity=8, archive_capacity=32
    )
    hybrid_nsga = NoveltyGAConfig(
        population_size=8, k_neighbors=6, best_set_capacity=8,
        archive_capacity=32, fitness_weight=0.5,
    )
    islands = IslandModelConfig(n_islands=2, migration_interval=2, n_migrants=2)

    systems = [
        ESSNS(ESSNSConfig(nsga=nsga, max_generations=6), n_workers=args.workers),
        ESSNSIM(
            ESSNSIMConfig(nsga=island_nsga, islands=islands, max_generations=6),
            n_workers=args.workers,
        ),
        ESSNSIM(
            ESSNSIMConfig(nsga=hybrid_nsga, islands=islands, max_generations=6),
            n_workers=args.workers,
        ),
        ESSNS(
            ESSNSConfig(
                nsga=nsga, max_generations=6,
                novel_fraction=0.2, random_fraction=0.1,
            ),
            n_workers=args.workers,
        ),
        ESSNS(
            ESSNSConfig(nsga=nsga, max_generations=6, archive_kind="threshold"),
            n_workers=args.workers,
        ),
    ]
    labels = [
        "ESS-NS (paper, one level)",
        "ESSNS-IM (islands)",
        "ESSNS-IM (hybrid w=0.5)",
        "ESS-NS + novel/random mix",
        "ESS-NS + threshold archive",
    ]

    rows = []
    for label, system in zip(labels, systems):
        run = system.run(fire, rng=args.seed)
        rows.append(
            [
                label,
                round(run.mean_quality(), 4),
                run.total_evaluations(),
                round(run.total_time(), 2),
            ]
        )
    print(
        format_table(
            ["variant", "mean quality", "simulations", "seconds"], rows
        )
    )


if __name__ == "__main__":
    main()
