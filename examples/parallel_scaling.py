#!/usr/bin/env python
"""Master/Worker scaling of the fitness-evaluation stage (E3).

The paper's first version parallelises exactly one thing: the scenario
simulations + fitness computation, under a Master/Worker design. This
example measures that stage in isolation — the same batch of scenarios
evaluated serially, by the process pool, and by the explicit
message-passing Master/Worker engine — and prints the speedup table.

On a single-core container the speedup is expectedly ≤ 1 (the exercise
then demonstrates correctness: every backend returns bit-identical
fitness vectors); on a multi-core machine the pool approaches linear
scaling because scenario simulations are embarrassingly parallel.

Usage::

    python examples/parallel_scaling.py [--size 60] [--batch 64] [--max-workers 4]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import (
    MasterWorkerEngine,
    ParameterSpace,
    PredictionStepProblem,
    ProcessPoolEvaluator,
    SerialEvaluator,
    grassland_case,
)
from repro.analysis.metrics import speedup_table
from repro.analysis.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=60)
    parser.add_argument("--batch", type=int, default=64, help="scenarios per batch")
    parser.add_argument("--max-workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    fire = grassland_case(size=args.size, n_steps=2)
    problem = PredictionStepProblem(
        terrain=fire.terrain,
        start_burned=fire.start_mask(1),
        real_burned=fire.real_mask(1),
        horizon=fire.step_horizon(1),
    )
    space = ParameterSpace()
    genomes = space.sample(args.batch, args.seed)

    serial = SerialEvaluator(problem)
    t0 = time.perf_counter()
    reference = serial(genomes)
    serial_seconds = time.perf_counter() - t0
    print(
        f"serial: {args.batch} scenarios on {args.size}x{args.size} in "
        f"{serial_seconds:.3f}s"
    )

    parallel_seconds: dict[int, float] = {}
    for workers in range(2, args.max_workers + 1):
        with ProcessPoolEvaluator(problem, n_workers=workers) as pool:
            pool(genomes[:4])  # warm the workers before timing
            t0 = time.perf_counter()
            values = pool(genomes)
            parallel_seconds[workers] = time.perf_counter() - t0
        assert np.allclose(values, reference), "pool must match serial exactly"

    with MasterWorkerEngine(problem, n_workers=2, chunk_size=4) as engine:
        values = engine(genomes)
        assert np.allclose(values, reference), "engine must match serial exactly"
        print(
            f"message engine (2 workers): load imbalance "
            f"{engine.load_imbalance():.2f}, "
            f"tasks per worker {[s.tasks_completed for s in engine.stats]}"
        )

    rows = speedup_table(serial_seconds, parallel_seconds)
    print()
    print(
        format_table(
            ["workers", "seconds", "speedup", "efficiency"],
            [[r["workers"], r["seconds"], r["speedup"], r["efficiency"]] for r in rows],
        )
    )
    print("\nall backends returned identical fitness vectors ✓")


if __name__ == "__main__":
    main()
