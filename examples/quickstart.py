#!/usr/bin/env python
"""Quickstart: predict a synthetic grassland fire with ESS-NS.

Runs the paper's proposed system (Fig. 3) end to end:

1. build a synthetic reference fire (the stand-in for real burned maps);
2. run ESS-NS — novelty-search GA in the Optimization Stage, bestSet
   harvest, Statistical/Calibration/Prediction stages per step;
3. print the per-step table: Kign, calibration fitness, and the
   prediction quality (Eq. 3 Jaccard of predicted vs real fire).

Usage::

    python examples/quickstart.py [--size 50] [--steps 4] [--workers 1]
"""

from __future__ import annotations

import argparse

from repro import ESSNS, ESSNSConfig, NoveltyGAConfig, format_run, grassland_case


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=50, help="grid side, cells")
    parser.add_argument("--steps", type=int, default=4, help="prediction steps")
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Building the reference fire (hidden true scenario)...")
    fire = grassland_case(size=args.size, n_steps=args.steps)
    print(f"  {fire.description}")
    print(
        "  growth per step:",
        [fire.growth_cells(s) for s in range(1, fire.n_steps + 1)],
        "cells",
    )

    config = ESSNSConfig(
        nsga=NoveltyGAConfig(
            population_size=24,
            k_neighbors=10,
            best_set_capacity=16,
            archive_capacity=60,
        ),
        max_generations=8,
    )
    system = ESSNS(config, n_workers=args.workers)
    print(f"\nRunning {system.name} ({args.workers} worker(s))...")
    result = system.run(fire, rng=args.seed)

    print()
    print(format_run(result))
    print(
        "\nNote: step 1 has no prediction — the Key Ignition Value is "
        "calibrated at each step and consumed by the next one (paper §II-A)."
    )


if __name__ == "__main__":
    main()
