#!/usr/bin/env python
"""ESSIM-DE premature convergence and the dynamic tuning fix (E2).

§II-B: plain ESSIM-DE converged prematurely; a population-restart
operator and an IQR-factor metric were retrofitted and "achieved better
quality and response times with respect to the same method without
tuning". This example reproduces that story:

1. run island DE on a reference fire with tuning off — watch the
   per-island fitness IQR collapse;
2. run the same configuration with restart / IQR / both — the
   interventions fire and quality recovers;
3. contrast with ESS-NS, which needs no tuning because novelty search
   "not only keeps diversity but actively reinforces it" (§III-A).

Usage::

    python examples/tuning_demo.py [--size 44] [--steps 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DEConfig,
    ESSIMDE,
    ESSIMDEConfig,
    ESSNS,
    ESSNSConfig,
    IslandModelConfig,
    NoveltyGAConfig,
    grassland_case,
)
from repro.analysis.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=44)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    fire = grassland_case(size=args.size, n_steps=args.steps)
    print(f"case: {fire.description}\n")

    islands = IslandModelConfig(n_islands=2, migration_interval=2)
    de = DEConfig(population_size=14)
    rows = []
    for tuning in ("none", "restart", "iqr", "both"):
        config = ESSIMDEConfig(
            de=de, islands=islands, max_generations=10, tuning=tuning
        )
        system = ESSIMDE(config)
        run = system.run(fire, rng=args.seed)
        rows.append(
            [
                system.name,
                run.mean_quality(),
                run.total_evaluations(),
                round(run.total_time(), 2),
            ]
        )

    ns = ESSNS(
        ESSNSConfig(
            nsga=NoveltyGAConfig(population_size=28, k_neighbors=10),
            max_generations=10,
        )
    )
    ns_run = ns.run(fire, rng=args.seed)
    rows.append(
        [
            ns.name + " (no tuning needed)",
            ns_run.mean_quality(),
            ns_run.total_evaluations(),
            round(ns_run.total_time(), 2),
        ]
    )

    print(
        format_table(
            ["system", "mean quality", "simulations", "seconds"], rows
        )
    )
    print(
        "\nESSIM-DE rows show the §II-B tuning ladder; ESS-NS sustains "
        "diversity by construction."
    )


if __name__ == "__main__":
    main()
