#!/usr/bin/env python
"""The paper's hypothesis experiment (E1): ESS-NS vs the lineage.

Runs the four systems — ESS (Fig. 1), ESS-NS (Fig. 3), ESSIM-EA and
ESSIM-DE — on the same reference fires with a matched per-step
simulation budget, and prints the quality-per-step comparison table.

The paper's hypothesis: "the application of a novelty-based
metaheuristic to the fire propagation prediction problem can obtain
comparable or better results in quality with respect to existing
methods". The dynamic-wind case is the stressor where converged
populations age badly (§IV).

Usage::

    python examples/compare_methods.py [--case grassland|heterogeneous|dynamic_wind|river_gap]
                                       [--size 44] [--steps 4] [--seeds 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    ESS,
    ESSConfig,
    ESSIMDE,
    ESSIMDEConfig,
    ESSIMEA,
    ESSIMEAConfig,
    ESSNS,
    ESSNSConfig,
    GAConfig,
    DEConfig,
    IslandModelConfig,
    NoveltyGAConfig,
    compare_runs,
    format_comparison,
)
from repro.workloads import CASE_BUILDERS


def build_systems(n_workers: int):
    """The four systems with a matched ~(24 × 8) per-step budget."""
    ga = GAConfig(population_size=24)
    nsga = NoveltyGAConfig(
        population_size=24, k_neighbors=10, best_set_capacity=16, archive_capacity=60
    )
    islands = IslandModelConfig(n_islands=2, migration_interval=2, n_migrants=2)
    return [
        ESS(ESSConfig(ga=ga, max_generations=8), n_workers=n_workers),
        ESSNS(ESSNSConfig(nsga=nsga, max_generations=8), n_workers=n_workers),
        ESSIMEA(
            ESSIMEAConfig(
                ga=GAConfig(population_size=12), islands=islands, max_generations=8
            ),
            n_workers=n_workers,
        ),
        ESSIMDE(
            ESSIMDEConfig(
                de=DEConfig(population_size=12),
                islands=islands,
                max_generations=8,
                tuning="both",
            ),
            n_workers=n_workers,
        ),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--case", choices=sorted(CASE_BUILDERS), default="grassland"
    )
    parser.add_argument("--size", type=int, default=44)
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--seeds", type=int, default=3, help="independent repetitions")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    fire = CASE_BUILDERS[args.case](size=args.size, n_steps=args.steps)
    print(f"case: {fire.description}\n")

    per_system: dict[str, list[float]] = {}
    last_comparison = None
    for seed in range(args.seeds):
        runs = []
        for system in build_systems(args.workers):
            run = system.run(fire, rng=1000 + seed)
            runs.append(run)
            per_system.setdefault(run.system, []).append(run.mean_quality())
        last_comparison = compare_runs(runs)
        print(f"--- seed {seed} ---")
        print(format_comparison(last_comparison))
        print()

    print("=== mean quality over seeds ===")
    for name, values in per_system.items():
        arr = np.asarray(values)
        print(f"  {name:16s} {arr.mean():.4f} ± {arr.std():.4f}")


if __name__ == "__main__":
    main()
