#!/usr/bin/env python
"""Novelty Search vs fitness-guided search on a deceptive landscape.

§II-C motivates NS with *deceptiveness*: landscapes where combining
high-fitness solutions leads away from the global optimum. This example
builds the trap landscape of :mod:`repro.workloads.deceptive` over the
Table I scenario space — a narrow global peak plus a smooth slope whose
gradient points away from it — and races Algorithm 1 against the
classical GA and DE.

Expected outcome: GA/DE climb the deceptive slope and plateau at the
trap height (~0.6); the NS bestSet finds the hidden peak (> 0.8) in a
substantial fraction of seeds, because the search never commits to the
slope's gradient.

Usage::

    python examples/deceptive_landscape.py [--trials 10] [--generations 40]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DEConfig,
    DifferentialEvolution,
    GAConfig,
    GeneticAlgorithm,
    NoveltyGA,
    NoveltyGAConfig,
    ParameterSpace,
    SerialEvaluator,
    Termination,
)
from repro.analysis.reporting import format_table
from repro.workloads import DeceptiveLandscape


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--generations", type=int, default=40)
    parser.add_argument("--population", type=int, default=30)
    args = parser.parse_args()

    space = ParameterSpace()
    term = Termination(max_generations=args.generations, fitness_threshold=0.99)
    pop = args.population

    scores = {"GA": [], "NS-GA (Alg. 1)": [], "DE": []}
    solved = {k: 0 for k in scores}
    for trial in range(args.trials):
        # The landscape seed is offset from the algorithm seed so the
        # hidden optimum never collides with an initial population draw.
        landscape = DeceptiveLandscape(space, rng=10_000 + trial)
        evaluate = SerialEvaluator(landscape)

        # Gaussian (local) mutation gives the hill-climbing semantics
        # deception preys on; uniform-reset mutation would degrade every
        # algorithm into global random search and mask the effect.
        ga = GeneticAlgorithm(
            GAConfig(population_size=pop, mutation="gaussian")
        ).run(evaluate, space, term, rng=trial)
        ns = NoveltyGA(
            NoveltyGAConfig(population_size=pop, k_neighbors=10, mutation="gaussian")
        ).run(evaluate, space, term, rng=trial)
        de = DifferentialEvolution(DEConfig(population_size=pop)).run(
            evaluate, space, term, rng=trial
        )

        results = {
            "GA": ga.best.fitness,
            "NS-GA (Alg. 1)": ns.best_set.max_fitness(),
            "DE": de.best.fitness,
        }
        for name, value in results.items():
            scores[name].append(value)
            if value > landscape.trap_height:
                solved[name] += 1

    rows = []
    for name, values in scores.items():
        arr = np.asarray(values)
        rows.append(
            [
                name,
                float(arr.mean()),
                float(arr.max()),
                f"{solved[name]}/{args.trials}",
            ]
        )
    print(
        format_table(
            ["algorithm", "mean best fitness", "max best fitness", "escaped trap"],
            rows,
        )
    )
    print(
        f"\ntrap height = {DeceptiveLandscape(space, rng=0).trap_height}; "
        "'escaped trap' counts trials whose best fitness beat every "
        "off-peak value."
    )


if __name__ == "__main__":
    main()
